#include "analysis/suite.h"

#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "analysis/report.h"
#include "util/logging.h"
#include "util/par.h"

namespace atlas::analysis {

SiteAccumulator::SiteAccumulator(const trace::Publisher& publisher,
                                 const SuiteConfig& config)
    : publisher_(publisher),
      run_trend_clusters_(config.run_trend_clusters),
      video_trend_config_(config.trend),
      image_trend_config_(config.trend) {
  video_trend_config_.use_class = true;
  video_trend_config_.content_class = trace::ContentClass::kVideo;
  image_trend_config_.use_class = true;
  image_trend_config_.content_class = trace::ContentClass::kImage;
  if (run_trend_clusters_) {
    video_series_.emplace(video_trend_config_);
    image_series_.emplace(image_trend_config_);
  }
}

void SiteAccumulator::Add(const trace::LogRecord& r) {
  ++records_;
  summary_.Add(r);
  composition_.Add(r);
  hourly_.Add(r);
  devices_.Add(r);
  sizes_.Add(r);
  popularity_.Add(r);
  aging_.Add(r);
  sessions_.Add(r);
  engagement_.Add(r);
  caching_.Add(r);
  if (video_series_) video_series_->Add(r);
  if (image_series_) image_series_->Add(r);
}

SiteAnalysis SiteAccumulator::Finalize() {
  ATLAS_LOG(kInfo) << "analyzing " << publisher_.name << " (" << records_
                   << " records)";
  SiteAnalysis a;
  a.site = publisher_.name;
  a.kind = publisher_.kind;
  a.summary = summary_.Finalize(publisher_.name);
  a.composition = composition_.Finalize(publisher_.name);
  a.hourly = hourly_.Finalize(publisher_.name);
  a.devices = devices_.Finalize(publisher_.name);
  a.sizes = sizes_.Finalize(publisher_.name);
  a.popularity = popularity_.Finalize(publisher_.name);
  a.aging = aging_.Finalize(publisher_.name);
  a.sessions = sessions_.Finalize(publisher_.name);
  a.engagement = engagement_.Finalize(publisher_.name);
  a.caching = caching_.Finalize(publisher_.name);
  if (video_series_) {
    a.video_trends = ClusterTrendSeries(video_series_->Finalize(),
                                        publisher_.name, video_trend_config_);
  }
  if (image_series_) {
    a.image_trends = ClusterTrendSeries(image_series_->Finalize(),
                                        publisher_.name, image_trend_config_);
  }
  return a;
}

namespace {
constexpr std::uint32_t kSiteAccumulatorStateVersion = 1;
constexpr std::uint32_t kStreamingAnalysisStateVersion = 1;
}  // namespace

void SiteAccumulator::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kSiteAccumulatorStateVersion);
  w.WriteString(publisher_.name);
  w.WriteBool(run_trend_clusters_);
  w.WriteU64(records_);
  summary_.SaveState(w);
  composition_.SaveState(w);
  hourly_.SaveState(w);
  devices_.SaveState(w);
  sizes_.SaveState(w);
  popularity_.SaveState(w);
  aging_.SaveState(w);
  sessions_.SaveState(w);
  engagement_.SaveState(w);
  caching_.SaveState(w);
  if (run_trend_clusters_) {
    video_series_->SaveState(w);
    image_series_->SaveState(w);
  }
}

void SiteAccumulator::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("site accumulator", kSiteAccumulatorStateVersion);
  const std::string saved_name = r.ReadString();
  if (saved_name != publisher_.name) {
    throw std::runtime_error("ckpt: site accumulator publisher mismatch "
                             "(checkpoint has '" +
                             saved_name + "', this run built '" +
                             publisher_.name + "')");
  }
  const bool saved_trends = r.ReadBool();
  if (saved_trends != run_trend_clusters_) {
    throw std::runtime_error(
        "ckpt: trend-cluster configuration mismatch (checkpoint was taken "
        "with run_trend_clusters " +
        std::string(saved_trends ? "on" : "off") + ")");
  }
  records_ = r.ReadU64();
  summary_.RestoreState(r);
  composition_.RestoreState(r);
  hourly_.RestoreState(r);
  devices_.RestoreState(r);
  sizes_.RestoreState(r);
  popularity_.RestoreState(r);
  aging_.RestoreState(r);
  sessions_.RestoreState(r);
  engagement_.RestoreState(r);
  caching_.RestoreState(r);
  if (run_trend_clusters_) {
    video_series_->RestoreState(r);
    image_series_->RestoreState(r);
  }
}

StreamingAnalysis::StreamingAnalysis(const trace::PublisherRegistry& registry,
                                     const SuiteConfig& config)
    : config_(config), publishers_(registry.all()) {
  pub_index_.reserve(publishers_.size());
  for (std::size_t i = 0; i < publishers_.size(); ++i) {
    pub_index_.emplace(publishers_[i].id, i);
  }
  accumulators_.resize(publishers_.size());
}

void StreamingAnalysis::Add(const trace::LogRecord& r) {
  ++records_consumed_;
  const auto it = pub_index_.find(r.publisher_id);
  if (it == pub_index_.end()) return;  // unregistered publisher
  auto& acc = accumulators_[it->second];
  if (!acc) {
    acc = std::make_unique<SiteAccumulator>(publishers_[it->second], config_);
  }
  acc->Add(r);
}

void StreamingAnalysis::AddChunk(std::span<const trace::LogRecord> records) {
  for (const auto& r : records) Add(r);
}

std::vector<SiteAnalysis> StreamingAnalysis::Finalize() {
  // Finalization — where the expensive work (Ecdf sorts, DTW clustering)
  // lives — runs one site per worker into a dedicated slot, preserving
  // registry order. The per-site DTW clustering nested inside runs inline
  // on the site's worker (ParallelFor detects the enclosing region).
  std::vector<std::optional<SiteAnalysis>> slots(publishers_.size());
  util::ParallelFor(
      publishers_.size(),
      [&](std::size_t i) {
        if (accumulators_[i]) slots[i] = accumulators_[i]->Finalize();
      },
      config_.threads);
  std::vector<SiteAnalysis> sites;
  for (auto& slot : slots) {
    if (slot) sites.push_back(std::move(*slot));
  }
  return sites;
}

void StreamingAnalysis::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kStreamingAnalysisStateVersion);
  w.WriteU64(records_consumed_);
  w.WriteU64(static_cast<std::uint64_t>(publishers_.size()));
  for (std::size_t i = 0; i < publishers_.size(); ++i) {
    w.WriteBool(accumulators_[i] != nullptr);
    if (accumulators_[i]) accumulators_[i]->SaveState(w);
  }
}

void StreamingAnalysis::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("streaming analysis", kStreamingAnalysisStateVersion);
  records_consumed_ = r.ReadU64();
  const std::uint64_t n = r.ReadU64();
  if (n != publishers_.size()) {
    throw std::runtime_error(
        "ckpt: publisher count mismatch (checkpoint has " +
        std::to_string(n) + " publishers, registry has " +
        std::to_string(publishers_.size()) + ")");
  }
  for (std::size_t i = 0; i < publishers_.size(); ++i) {
    if (!r.ReadBool()) {
      accumulators_[i].reset();
      continue;
    }
    accumulators_[i] =
        std::make_unique<SiteAccumulator>(publishers_[i], config_);
    accumulators_[i]->RestoreState(r);
  }
}

AnalysisSuite::AnalysisSuite(const trace::TraceBuffer& full_trace,
                             const trace::PublisherRegistry& registry,
                             const SuiteConfig& config) {
  if (full_trace.IsSortedByTime()) {
    trace::BufferSource source(full_trace);
    Run(source, registry, config);
  } else {
    trace::TraceBuffer sorted = full_trace;
    sorted.SortByTime();
    trace::BufferSource source(sorted);
    Run(source, registry, config);
  }
}

AnalysisSuite::AnalysisSuite(trace::RecordSource& source,
                             const trace::PublisherRegistry& registry,
                             const SuiteConfig& config) {
  Run(source, registry, config);
}

void AnalysisSuite::Run(trace::RecordSource& source,
                        const trace::PublisherRegistry& registry,
                        const SuiteConfig& config) {
  // One sequential demultiplexing pass feeds a per-publisher accumulator
  // set; accumulation order is the stream order regardless of thread
  // count, so the suite is deterministic by construction.
  StreamingAnalysis stream(registry, config);
  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    stream.AddChunk(chunk);
  }
  sites_ = stream.Finalize();
}

const SiteAnalysis& AnalysisSuite::site(const std::string& name) const {
  for (const auto& s : sites_) {
    if (s.site == name) return s;
  }
  throw std::out_of_range("AnalysisSuite: unknown site " + name);
}

void AnalysisSuite::Render(std::ostream& out) const {
  std::vector<DatasetSummary> summaries;
  std::vector<CompositionResult> compositions;
  std::vector<HourlyVolume> hourly;
  std::vector<DeviceComposition> devices;
  std::vector<SizeDistributions> sizes;
  std::vector<PopularityResult> popularity;
  std::vector<AgingResult> aging;
  std::vector<SessionResult> sessions;
  std::vector<EngagementResult> engagement;
  std::vector<CachingResult> caching;
  for (const auto& s : sites_) {
    summaries.push_back(s.summary);
    compositions.push_back(s.composition);
    hourly.push_back(s.hourly);
    devices.push_back(s.devices);
    sizes.push_back(s.sizes);
    popularity.push_back(s.popularity);
    aging.push_back(s.aging);
    sessions.push_back(s.sessions);
    engagement.push_back(s.engagement);
    caching.push_back(s.caching);
  }

  out << "=== Dataset summary (paper SS III) ===\n";
  RenderDatasetSummaries(summaries, out);
  out << "\n=== Fig. 1: content composition ===\n";
  RenderContentComposition(compositions, out);
  out << "\n=== Fig. 2: traffic composition ===\n";
  RenderTrafficComposition(compositions, out);
  out << "\n=== Fig. 3: hourly traffic volume (local time, % of weekly) ===\n";
  RenderHourlyVolume(hourly, out);
  out << "\n=== Fig. 4: device type composition ===\n";
  RenderDeviceComposition(devices, out);
  out << "\n=== Fig. 5: content size distributions ===\n";
  RenderSizeDistributions(sizes, out);
  out << "\n=== Fig. 6: content popularity ===\n";
  RenderPopularity(popularity, out);
  out << "\n=== Fig. 7: content aging ===\n";
  RenderAging(aging, out);
  for (const auto& s : sites_) {
    if (s.video_trends && s.video_trends->clustered_objects >= 2) {
      out << "\n=== Figs. 8-9: " << s.site << " video popularity trends ===\n";
      RenderTrendClusters(*s.video_trends, out);
      RenderClusterMedoids(*s.video_trends, out);
    }
    if (s.image_trends && s.image_trends->clustered_objects >= 2) {
      out << "\n=== Figs. 8,10: " << s.site << " image popularity trends ===\n";
      RenderTrendClusters(*s.image_trends, out);
      RenderClusterMedoids(*s.image_trends, out);
    }
  }
  out << "\n=== Figs. 11-12: sessions ===\n";
  RenderSessions(sessions, out);
  out << "\n=== Figs. 13-14: engagement & addiction ===\n";
  for (const auto& e : engagement) {
    RenderRepeatedAccess(e, out);
    out << '\n';
  }
  RenderEngagement(engagement, out);
  out << "\n=== Fig. 15: CDN cache hit ratios ===\n";
  RenderCaching(caching, out);
  out << "\n=== Fig. 16: HTTP response codes ===\n";
  RenderResponseCodes(caching, out);
}

}  // namespace atlas::analysis
