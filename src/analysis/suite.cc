#include "analysis/suite.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "analysis/report.h"
#include "util/logging.h"
#include "util/par.h"

namespace atlas::analysis {

SiteAccumulator::SiteAccumulator(const trace::Publisher& publisher,
                                 const SuiteConfig& config)
    : publisher_(publisher),
      run_trend_clusters_(config.run_trend_clusters),
      video_trend_config_(config.trend),
      image_trend_config_(config.trend) {
  video_trend_config_.use_class = true;
  video_trend_config_.content_class = trace::ContentClass::kVideo;
  image_trend_config_.use_class = true;
  image_trend_config_.content_class = trace::ContentClass::kImage;
  if (run_trend_clusters_) {
    video_series_.emplace(video_trend_config_);
    image_series_.emplace(image_trend_config_);
  }
}

void SiteAccumulator::Add(const trace::LogRecord& r) {
  ++records_;
  summary_.Add(r);
  composition_.Add(r);
  hourly_.Add(r);
  devices_.Add(r);
  sizes_.Add(r);
  popularity_.Add(r);
  aging_.Add(r);
  sessions_.Add(r);
  engagement_.Add(r);
  caching_.Add(r);
  if (video_series_) video_series_->Add(r);
  if (image_series_) image_series_->Add(r);
}

void SiteAccumulator::AddBatch(const trace::RecordBlock& b,
                               const std::uint32_t* rows, std::size_t n) {
  records_ += n;
  summary_.AddBatch(b, rows, n);
  composition_.AddBatch(b, rows, n);
  hourly_.AddBatch(b, rows, n);
  devices_.AddBatch(b, rows, n);
  sizes_.AddBatch(b, rows, n);
  popularity_.AddBatch(b, rows, n);
  aging_.AddBatch(b, rows, n);
  sessions_.AddBatch(b, rows, n);
  engagement_.AddBatch(b, rows, n);
  caching_.AddBatch(b, rows, n);
  if (video_series_) video_series_->AddBatch(b, rows, n);
  if (image_series_) image_series_->AddBatch(b, rows, n);
}

SiteAnalysis SiteAccumulator::Finalize() {
  ATLAS_LOG(kInfo) << "analyzing " << publisher_.name << " (" << records_
                   << " records)";
  SiteAnalysis a;
  a.site = publisher_.name;
  a.kind = publisher_.kind;
  a.summary = summary_.Finalize(publisher_.name);
  a.composition = composition_.Finalize(publisher_.name);
  a.hourly = hourly_.Finalize(publisher_.name);
  a.devices = devices_.Finalize(publisher_.name);
  a.sizes = sizes_.Finalize(publisher_.name);
  a.popularity = popularity_.Finalize(publisher_.name);
  a.aging = aging_.Finalize(publisher_.name);
  a.sessions = sessions_.Finalize(publisher_.name);
  a.engagement = engagement_.Finalize(publisher_.name);
  a.caching = caching_.Finalize(publisher_.name);
  if (video_series_) {
    a.video_trends = ClusterTrendSeries(video_series_->Finalize(),
                                        publisher_.name, video_trend_config_);
  }
  if (image_series_) {
    a.image_trends = ClusterTrendSeries(image_series_->Finalize(),
                                        publisher_.name, image_trend_config_);
  }
  return a;
}

namespace {
constexpr std::uint32_t kSiteAccumulatorStateVersion = 1;
constexpr std::uint32_t kStreamingAnalysisStateVersion = 1;
}  // namespace

void SiteAccumulator::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kSiteAccumulatorStateVersion);
  w.WriteString(publisher_.name);
  w.WriteBool(run_trend_clusters_);
  w.WriteU64(records_);
  summary_.SaveState(w);
  composition_.SaveState(w);
  hourly_.SaveState(w);
  devices_.SaveState(w);
  sizes_.SaveState(w);
  popularity_.SaveState(w);
  aging_.SaveState(w);
  sessions_.SaveState(w);
  engagement_.SaveState(w);
  caching_.SaveState(w);
  if (run_trend_clusters_) {
    video_series_->SaveState(w);
    image_series_->SaveState(w);
  }
}

void SiteAccumulator::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("site accumulator", kSiteAccumulatorStateVersion);
  const std::string saved_name = r.ReadString();
  if (saved_name != publisher_.name) {
    throw std::runtime_error("ckpt: site accumulator publisher mismatch "
                             "(checkpoint has '" +
                             saved_name + "', this run built '" +
                             publisher_.name + "')");
  }
  const bool saved_trends = r.ReadBool();
  if (saved_trends != run_trend_clusters_) {
    throw std::runtime_error(
        "ckpt: trend-cluster configuration mismatch (checkpoint was taken "
        "with run_trend_clusters " +
        std::string(saved_trends ? "on" : "off") + ")");
  }
  records_ = r.ReadU64();
  summary_.RestoreState(r);
  composition_.RestoreState(r);
  hourly_.RestoreState(r);
  devices_.RestoreState(r);
  sizes_.RestoreState(r);
  popularity_.RestoreState(r);
  aging_.RestoreState(r);
  sessions_.RestoreState(r);
  engagement_.RestoreState(r);
  caching_.RestoreState(r);
  if (run_trend_clusters_) {
    video_series_->RestoreState(r);
    image_series_->RestoreState(r);
  }
}

StreamingAnalysis::StreamingAnalysis(const trace::PublisherRegistry& registry,
                                     const SuiteConfig& config)
    : config_(config), publishers_(registry.all()) {
  pub_index_.reserve(publishers_.size());
  std::uint32_t max_id = 0;
  for (std::size_t i = 0; i < publishers_.size(); ++i) {
    pub_index_.InsertIfAbsent(publishers_[i].id, i);
    max_id = std::max(max_id, publishers_[i].id);
  }
  // Direct-indexed id table for the per-record hot path; only worth the
  // memory when the id space is small (registry ids are sequential).
  constexpr std::uint32_t kDenseIdLimit = 1u << 16;
  if (!publishers_.empty() && max_id < kDenseIdLimit) {
    dense_index_.assign(static_cast<std::size_t>(max_id) + 1, -1);
    for (std::size_t i = 0; i < publishers_.size(); ++i) {
      std::int32_t& slot = dense_index_[publishers_[i].id];
      if (slot < 0) slot = static_cast<std::int32_t>(i);
    }
  }
  accumulators_.resize(publishers_.size());
}

SiteAccumulator& StreamingAnalysis::AccumulatorFor(std::size_t index) {
  auto& acc = accumulators_[index];
  if (!acc) {
    acc = std::make_unique<SiteAccumulator>(publishers_[index], config_);
  }
  return *acc;
}

void StreamingAnalysis::Add(const trace::LogRecord& r) {
  ++records_consumed_;
  const std::int64_t idx = IndexFor(r.publisher_id);
  if (idx < 0) return;  // unregistered publisher
  AccumulatorFor(static_cast<std::size_t>(idx)).Add(r);
}

void StreamingAnalysis::AddChunk(std::span<const trace::LogRecord> records) {
  for (const auto& r : records) Add(r);
}

void StreamingAnalysis::AddBlock(const trace::RecordBlock& block,
                                 std::size_t first_row) {
  const std::size_t n = block.size();
  if (first_row >= n) return;
  records_consumed_ += n - first_row;

  if (first_row == 0) {
    // Fast path: single-publisher block (per-site traces, and long runs of
    // a merged trace) — hand the whole block down with no row indirection.
    const std::uint32_t first_pub = block.publisher_id[0];
    bool uniform = true;
    for (std::size_t i = 1; i < n; ++i) {
      if (block.publisher_id[i] != first_pub) {
        uniform = false;
        break;
      }
    }
    if (uniform) {
      if (const std::int64_t idx = IndexFor(first_pub); idx >= 0) {
        AccumulatorFor(static_cast<std::size_t>(idx)).AddBatch(block, nullptr,
                                                               n);
      }
      return;
    }
  }

  // Stable demux: per-publisher row-index lists preserve stream order
  // within each site, so the per-site results are identical to feeding the
  // rows through Add() one at a time.
  if (demux_rows_.size() != publishers_.size()) {
    demux_rows_.assign(publishers_.size(), {});
  }
  touched_.clear();
  for (std::size_t i = first_row; i < n; ++i) {
    const std::int64_t found = IndexFor(block.publisher_id[i]);
    if (found < 0) continue;
    const auto idx = static_cast<std::size_t>(found);
    if (demux_rows_[idx].empty()) touched_.push_back(idx);
    demux_rows_[idx].push_back(static_cast<std::uint32_t>(i));
  }
  for (const std::size_t idx : touched_) {
    AccumulatorFor(idx).AddBatch(block, demux_rows_[idx].data(),
                                 demux_rows_[idx].size());
    demux_rows_[idx].clear();
  }
}

std::vector<SiteAnalysis> StreamingAnalysis::Finalize() {
  // Finalization — where the expensive work (Ecdf sorts, DTW clustering)
  // lives — runs one site per worker into a dedicated slot, preserving
  // registry order. The per-site DTW clustering nested inside runs inline
  // on the site's worker (ParallelFor detects the enclosing region).
  std::vector<std::optional<SiteAnalysis>> slots(publishers_.size());
  util::ParallelFor(
      publishers_.size(),
      [&](std::size_t i) {
        if (accumulators_[i]) slots[i] = accumulators_[i]->Finalize();
      },
      config_.threads);
  std::vector<SiteAnalysis> sites;
  for (auto& slot : slots) {
    if (slot) sites.push_back(std::move(*slot));
  }
  return sites;
}

void StreamingAnalysis::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kStreamingAnalysisStateVersion);
  w.WriteU64(records_consumed_);
  w.WriteU64(static_cast<std::uint64_t>(publishers_.size()));
  for (std::size_t i = 0; i < publishers_.size(); ++i) {
    w.WriteBool(accumulators_[i] != nullptr);
    if (accumulators_[i]) accumulators_[i]->SaveState(w);
  }
}

void StreamingAnalysis::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("streaming analysis", kStreamingAnalysisStateVersion);
  records_consumed_ = r.ReadU64();
  const std::uint64_t n = r.ReadU64();
  if (n != publishers_.size()) {
    throw std::runtime_error(
        "ckpt: publisher count mismatch (checkpoint has " +
        std::to_string(n) + " publishers, registry has " +
        std::to_string(publishers_.size()) + ")");
  }
  for (std::size_t i = 0; i < publishers_.size(); ++i) {
    if (!r.ReadBool()) {
      accumulators_[i].reset();
      continue;
    }
    accumulators_[i] =
        std::make_unique<SiteAccumulator>(publishers_[i], config_);
    accumulators_[i]->RestoreState(r);
  }
}

AnalysisSuite::AnalysisSuite(const trace::TraceBuffer& full_trace,
                             const trace::PublisherRegistry& registry,
                             const SuiteConfig& config) {
  // The batch and per-record paths produce identical results (pinned by
  // the batch differential suite), so the in-memory convenience wrapper
  // takes the faster block path.
  if (full_trace.IsSortedByTime()) {
    trace::BufferBlockSource source(full_trace);
    RunBlocks(source, registry, config);
  } else {
    trace::TraceBuffer sorted = full_trace;
    sorted.SortByTime();
    trace::BufferBlockSource source(sorted);
    RunBlocks(source, registry, config);
  }
}

AnalysisSuite::AnalysisSuite(trace::RecordSource& source,
                             const trace::PublisherRegistry& registry,
                             const SuiteConfig& config) {
  Run(source, registry, config);
}

AnalysisSuite::AnalysisSuite(trace::BlockSource& source,
                             const trace::PublisherRegistry& registry,
                             const SuiteConfig& config) {
  RunBlocks(source, registry, config);
}

void AnalysisSuite::Run(trace::RecordSource& source,
                        const trace::PublisherRegistry& registry,
                        const SuiteConfig& config) {
  // One sequential demultiplexing pass feeds a per-publisher accumulator
  // set; accumulation order is the stream order regardless of thread
  // count, so the suite is deterministic by construction.
  StreamingAnalysis stream(registry, config);
  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    stream.AddChunk(chunk);
  }
  sites_ = stream.Finalize();
}

void AnalysisSuite::RunBlocks(trace::BlockSource& source,
                              const trace::PublisherRegistry& registry,
                              const SuiteConfig& config) {
  // Same sequential demultiplexing contract as Run(), in SoA block units.
  StreamingAnalysis stream(registry, config);
  for (const auto* block = source.NextBlock(); block != nullptr;
       block = source.NextBlock()) {
    stream.AddBlock(*block);
  }
  sites_ = stream.Finalize();
}

const SiteAnalysis& AnalysisSuite::site(const std::string& name) const {
  for (const auto& s : sites_) {
    if (s.site == name) return s;
  }
  throw std::out_of_range("AnalysisSuite: unknown site " + name);
}

void AnalysisSuite::Render(std::ostream& out) const {
  std::vector<DatasetSummary> summaries;
  std::vector<CompositionResult> compositions;
  std::vector<HourlyVolume> hourly;
  std::vector<DeviceComposition> devices;
  std::vector<SizeDistributions> sizes;
  std::vector<PopularityResult> popularity;
  std::vector<AgingResult> aging;
  std::vector<SessionResult> sessions;
  std::vector<EngagementResult> engagement;
  std::vector<CachingResult> caching;
  for (const auto& s : sites_) {
    summaries.push_back(s.summary);
    compositions.push_back(s.composition);
    hourly.push_back(s.hourly);
    devices.push_back(s.devices);
    sizes.push_back(s.sizes);
    popularity.push_back(s.popularity);
    aging.push_back(s.aging);
    sessions.push_back(s.sessions);
    engagement.push_back(s.engagement);
    caching.push_back(s.caching);
  }

  out << "=== Dataset summary (paper SS III) ===\n";
  RenderDatasetSummaries(summaries, out);
  out << "\n=== Fig. 1: content composition ===\n";
  RenderContentComposition(compositions, out);
  out << "\n=== Fig. 2: traffic composition ===\n";
  RenderTrafficComposition(compositions, out);
  out << "\n=== Fig. 3: hourly traffic volume (local time, % of weekly) ===\n";
  RenderHourlyVolume(hourly, out);
  out << "\n=== Fig. 4: device type composition ===\n";
  RenderDeviceComposition(devices, out);
  out << "\n=== Fig. 5: content size distributions ===\n";
  RenderSizeDistributions(sizes, out);
  out << "\n=== Fig. 6: content popularity ===\n";
  RenderPopularity(popularity, out);
  out << "\n=== Fig. 7: content aging ===\n";
  RenderAging(aging, out);
  for (const auto& s : sites_) {
    if (s.video_trends && s.video_trends->clustered_objects >= 2) {
      out << "\n=== Figs. 8-9: " << s.site << " video popularity trends ===\n";
      RenderTrendClusters(*s.video_trends, out);
      RenderClusterMedoids(*s.video_trends, out);
    }
    if (s.image_trends && s.image_trends->clustered_objects >= 2) {
      out << "\n=== Figs. 8,10: " << s.site << " image popularity trends ===\n";
      RenderTrendClusters(*s.image_trends, out);
      RenderClusterMedoids(*s.image_trends, out);
    }
  }
  out << "\n=== Figs. 11-12: sessions ===\n";
  RenderSessions(sessions, out);
  out << "\n=== Figs. 13-14: engagement & addiction ===\n";
  for (const auto& e : engagement) {
    RenderRepeatedAccess(e, out);
    out << '\n';
  }
  RenderEngagement(engagement, out);
  out << "\n=== Fig. 15: CDN cache hit ratios ===\n";
  RenderCaching(caching, out);
  out << "\n=== Fig. 16: HTTP response codes ===\n";
  RenderResponseCodes(caching, out);
}

}  // namespace atlas::analysis
