#include "analysis/suite.h"

#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "analysis/report.h"
#include "util/logging.h"
#include "util/par.h"

namespace atlas::analysis {

SiteAccumulator::SiteAccumulator(const trace::Publisher& publisher,
                                 const SuiteConfig& config)
    : publisher_(publisher),
      run_trend_clusters_(config.run_trend_clusters),
      video_trend_config_(config.trend),
      image_trend_config_(config.trend) {
  video_trend_config_.use_class = true;
  video_trend_config_.content_class = trace::ContentClass::kVideo;
  image_trend_config_.use_class = true;
  image_trend_config_.content_class = trace::ContentClass::kImage;
  if (run_trend_clusters_) {
    video_series_.emplace(video_trend_config_);
    image_series_.emplace(image_trend_config_);
  }
}

void SiteAccumulator::Add(const trace::LogRecord& r) {
  ++records_;
  summary_.Add(r);
  composition_.Add(r);
  hourly_.Add(r);
  devices_.Add(r);
  sizes_.Add(r);
  popularity_.Add(r);
  aging_.Add(r);
  sessions_.Add(r);
  engagement_.Add(r);
  caching_.Add(r);
  if (video_series_) video_series_->Add(r);
  if (image_series_) image_series_->Add(r);
}

SiteAnalysis SiteAccumulator::Finalize() {
  ATLAS_LOG(kInfo) << "analyzing " << publisher_.name << " (" << records_
                   << " records)";
  SiteAnalysis a;
  a.site = publisher_.name;
  a.kind = publisher_.kind;
  a.summary = summary_.Finalize(publisher_.name);
  a.composition = composition_.Finalize(publisher_.name);
  a.hourly = hourly_.Finalize(publisher_.name);
  a.devices = devices_.Finalize(publisher_.name);
  a.sizes = sizes_.Finalize(publisher_.name);
  a.popularity = popularity_.Finalize(publisher_.name);
  a.aging = aging_.Finalize(publisher_.name);
  a.sessions = sessions_.Finalize(publisher_.name);
  a.engagement = engagement_.Finalize(publisher_.name);
  a.caching = caching_.Finalize(publisher_.name);
  if (video_series_) {
    a.video_trends = ClusterTrendSeries(video_series_->Finalize(),
                                        publisher_.name, video_trend_config_);
  }
  if (image_series_) {
    a.image_trends = ClusterTrendSeries(image_series_->Finalize(),
                                        publisher_.name, image_trend_config_);
  }
  return a;
}

AnalysisSuite::AnalysisSuite(const trace::TraceBuffer& full_trace,
                             const trace::PublisherRegistry& registry,
                             const SuiteConfig& config) {
  if (full_trace.IsSortedByTime()) {
    trace::BufferSource source(full_trace);
    Run(source, registry, config);
  } else {
    trace::TraceBuffer sorted = full_trace;
    sorted.SortByTime();
    trace::BufferSource source(sorted);
    Run(source, registry, config);
  }
}

AnalysisSuite::AnalysisSuite(trace::RecordSource& source,
                             const trace::PublisherRegistry& registry,
                             const SuiteConfig& config) {
  Run(source, registry, config);
}

void AnalysisSuite::Run(trace::RecordSource& source,
                        const trace::PublisherRegistry& registry,
                        const SuiteConfig& config) {
  // One sequential demultiplexing pass feeds a per-publisher accumulator
  // set; accumulation order is the stream order regardless of thread
  // count, so the suite is deterministic by construction. Finalization —
  // where the expensive work (Ecdf sorts, DTW clustering) lives — then
  // runs one site per worker into a dedicated slot, preserving registry
  // order. The per-site DTW clustering nested inside runs inline on the
  // site's worker (ParallelFor detects the enclosing parallel region).
  const std::vector<trace::Publisher>& pubs = registry.all();
  std::unordered_map<std::uint32_t, std::size_t> pub_index;
  pub_index.reserve(pubs.size());
  for (std::size_t i = 0; i < pubs.size(); ++i) {
    pub_index.emplace(pubs[i].id, i);
  }

  std::vector<std::unique_ptr<SiteAccumulator>> accumulators(pubs.size());
  for (auto chunk = source.NextChunk(); !chunk.empty();
       chunk = source.NextChunk()) {
    for (const auto& r : chunk) {
      const auto it = pub_index.find(r.publisher_id);
      if (it == pub_index.end()) continue;  // unregistered publisher
      auto& acc = accumulators[it->second];
      if (!acc) {
        acc = std::make_unique<SiteAccumulator>(pubs[it->second], config);
      }
      acc->Add(r);
    }
  }

  std::vector<std::optional<SiteAnalysis>> slots(pubs.size());
  util::ParallelFor(
      pubs.size(),
      [&](std::size_t i) {
        if (accumulators[i]) slots[i] = accumulators[i]->Finalize();
      },
      config.threads);
  for (auto& slot : slots) {
    if (slot) sites_.push_back(std::move(*slot));
  }
}

const SiteAnalysis& AnalysisSuite::site(const std::string& name) const {
  for (const auto& s : sites_) {
    if (s.site == name) return s;
  }
  throw std::out_of_range("AnalysisSuite: unknown site " + name);
}

void AnalysisSuite::Render(std::ostream& out) const {
  std::vector<DatasetSummary> summaries;
  std::vector<CompositionResult> compositions;
  std::vector<HourlyVolume> hourly;
  std::vector<DeviceComposition> devices;
  std::vector<SizeDistributions> sizes;
  std::vector<PopularityResult> popularity;
  std::vector<AgingResult> aging;
  std::vector<SessionResult> sessions;
  std::vector<EngagementResult> engagement;
  std::vector<CachingResult> caching;
  for (const auto& s : sites_) {
    summaries.push_back(s.summary);
    compositions.push_back(s.composition);
    hourly.push_back(s.hourly);
    devices.push_back(s.devices);
    sizes.push_back(s.sizes);
    popularity.push_back(s.popularity);
    aging.push_back(s.aging);
    sessions.push_back(s.sessions);
    engagement.push_back(s.engagement);
    caching.push_back(s.caching);
  }

  out << "=== Dataset summary (paper SS III) ===\n";
  RenderDatasetSummaries(summaries, out);
  out << "\n=== Fig. 1: content composition ===\n";
  RenderContentComposition(compositions, out);
  out << "\n=== Fig. 2: traffic composition ===\n";
  RenderTrafficComposition(compositions, out);
  out << "\n=== Fig. 3: hourly traffic volume (local time, % of weekly) ===\n";
  RenderHourlyVolume(hourly, out);
  out << "\n=== Fig. 4: device type composition ===\n";
  RenderDeviceComposition(devices, out);
  out << "\n=== Fig. 5: content size distributions ===\n";
  RenderSizeDistributions(sizes, out);
  out << "\n=== Fig. 6: content popularity ===\n";
  RenderPopularity(popularity, out);
  out << "\n=== Fig. 7: content aging ===\n";
  RenderAging(aging, out);
  for (const auto& s : sites_) {
    if (s.video_trends && s.video_trends->clustered_objects >= 2) {
      out << "\n=== Figs. 8-9: " << s.site << " video popularity trends ===\n";
      RenderTrendClusters(*s.video_trends, out);
      RenderClusterMedoids(*s.video_trends, out);
    }
    if (s.image_trends && s.image_trends->clustered_objects >= 2) {
      out << "\n=== Figs. 8,10: " << s.site << " image popularity trends ===\n";
      RenderTrendClusters(*s.image_trends, out);
      RenderClusterMedoids(*s.image_trends, out);
    }
  }
  out << "\n=== Figs. 11-12: sessions ===\n";
  RenderSessions(sessions, out);
  out << "\n=== Figs. 13-14: engagement & addiction ===\n";
  for (const auto& e : engagement) {
    RenderRepeatedAccess(e, out);
    out << '\n';
  }
  RenderEngagement(engagement, out);
  out << "\n=== Fig. 15: CDN cache hit ratios ===\n";
  RenderCaching(caching, out);
  out << "\n=== Fig. 16: HTTP response codes ===\n";
  RenderResponseCodes(caching, out);
}

}  // namespace atlas::analysis
