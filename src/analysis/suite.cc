#include "analysis/suite.h"

#include <stdexcept>

#include "analysis/report.h"
#include "util/logging.h"
#include "util/par.h"

namespace atlas::analysis {
namespace {

SiteAnalysis AnalyzeSite(const trace::TraceBuffer& site_trace,
                         const trace::Publisher& pub,
                         const SuiteConfig& config) {
  ATLAS_LOG(kInfo) << "analyzing " << pub.name << " (" << site_trace.size()
                   << " records)";
  SiteAnalysis a;
  a.site = pub.name;
  a.kind = pub.kind;
  a.summary = ComputeDatasetSummary(site_trace, pub.name);
  a.composition = ComputeComposition(site_trace, pub.name);
  a.hourly = ComputeHourlyVolume(site_trace, pub.name);
  a.devices = ComputeDeviceComposition(site_trace, pub.name);
  a.sizes = ComputeSizeDistributions(site_trace, pub.name);
  a.popularity = ComputePopularity(site_trace, pub.name);
  a.aging = ComputeAging(site_trace, pub.name);
  a.sessions = ComputeSessions(site_trace, pub.name);
  a.engagement = ComputeEngagement(site_trace, pub.name);
  a.caching = ComputeCaching(site_trace, pub.name);
  if (config.run_trend_clusters) {
    TrendClusterConfig video_cfg = config.trend;
    video_cfg.use_class = true;
    video_cfg.content_class = trace::ContentClass::kVideo;
    a.video_trends = ComputeTrendClusters(site_trace, pub.name, video_cfg);
    TrendClusterConfig image_cfg = config.trend;
    image_cfg.use_class = true;
    image_cfg.content_class = trace::ContentClass::kImage;
    a.image_trends = ComputeTrendClusters(site_trace, pub.name, image_cfg);
  }
  return a;
}

}  // namespace

AnalysisSuite::AnalysisSuite(const trace::TraceBuffer& full_trace,
                             const trace::PublisherRegistry& registry,
                             const SuiteConfig& config) {
  // Sites are analyzed concurrently: each worker filters its publisher's
  // records out of the shared (read-only) trace and fills a dedicated slot.
  // Registry order is preserved by indexing, so the suite — and everything
  // rendered from it — is independent of the thread count. The per-site DTW
  // clustering nested inside runs inline on the site's worker (ParallelFor
  // detects the enclosing parallel region).
  const std::vector<trace::Publisher>& pubs = registry.all();
  std::vector<std::optional<SiteAnalysis>> slots(pubs.size());
  util::ParallelFor(
      pubs.size(),
      [&](std::size_t i) {
        const trace::TraceBuffer site_trace =
            full_trace.FilterByPublisher(pubs[i].id);
        if (site_trace.empty()) return;
        slots[i] = AnalyzeSite(site_trace, pubs[i], config);
      },
      config.threads);
  for (auto& slot : slots) {
    if (slot) sites_.push_back(std::move(*slot));
  }
}

const SiteAnalysis& AnalysisSuite::site(const std::string& name) const {
  for (const auto& s : sites_) {
    if (s.site == name) return s;
  }
  throw std::out_of_range("AnalysisSuite: unknown site " + name);
}

void AnalysisSuite::Render(std::ostream& out) const {
  std::vector<DatasetSummary> summaries;
  std::vector<CompositionResult> compositions;
  std::vector<HourlyVolume> hourly;
  std::vector<DeviceComposition> devices;
  std::vector<SizeDistributions> sizes;
  std::vector<PopularityResult> popularity;
  std::vector<AgingResult> aging;
  std::vector<SessionResult> sessions;
  std::vector<EngagementResult> engagement;
  std::vector<CachingResult> caching;
  for (const auto& s : sites_) {
    summaries.push_back(s.summary);
    compositions.push_back(s.composition);
    hourly.push_back(s.hourly);
    devices.push_back(s.devices);
    sizes.push_back(s.sizes);
    popularity.push_back(s.popularity);
    aging.push_back(s.aging);
    sessions.push_back(s.sessions);
    engagement.push_back(s.engagement);
    caching.push_back(s.caching);
  }

  out << "=== Dataset summary (paper SS III) ===\n";
  RenderDatasetSummaries(summaries, out);
  out << "\n=== Fig. 1: content composition ===\n";
  RenderContentComposition(compositions, out);
  out << "\n=== Fig. 2: traffic composition ===\n";
  RenderTrafficComposition(compositions, out);
  out << "\n=== Fig. 3: hourly traffic volume (local time, % of weekly) ===\n";
  RenderHourlyVolume(hourly, out);
  out << "\n=== Fig. 4: device type composition ===\n";
  RenderDeviceComposition(devices, out);
  out << "\n=== Fig. 5: content size distributions ===\n";
  RenderSizeDistributions(sizes, out);
  out << "\n=== Fig. 6: content popularity ===\n";
  RenderPopularity(popularity, out);
  out << "\n=== Fig. 7: content aging ===\n";
  RenderAging(aging, out);
  for (const auto& s : sites_) {
    if (s.video_trends && s.video_trends->clustered_objects >= 2) {
      out << "\n=== Figs. 8-9: " << s.site << " video popularity trends ===\n";
      RenderTrendClusters(*s.video_trends, out);
      RenderClusterMedoids(*s.video_trends, out);
    }
    if (s.image_trends && s.image_trends->clustered_objects >= 2) {
      out << "\n=== Figs. 8,10: " << s.site << " image popularity trends ===\n";
      RenderTrendClusters(*s.image_trends, out);
      RenderClusterMedoids(*s.image_trends, out);
    }
  }
  out << "\n=== Figs. 11-12: sessions ===\n";
  RenderSessions(sessions, out);
  out << "\n=== Figs. 13-14: engagement & addiction ===\n";
  for (const auto& e : engagement) {
    RenderRepeatedAccess(e, out);
    out << '\n';
  }
  RenderEngagement(engagement, out);
  out << "\n=== Fig. 15: CDN cache hit ratios ===\n";
  RenderCaching(caching, out);
  out << "\n=== Fig. 16: HTTP response codes ===\n";
  RenderResponseCodes(caching, out);
}

}  // namespace atlas::analysis
