// Content popularity (Fig. 6).
//
// "We quantify object popularity in terms of request count ... We observe
// long-tail distributions for all adult websites." Popularity CDFs are per
// class (video/image panels in the figure); the skewness summaries (power-
// law exponent, top-10% share, Gini) quantify "the expected skewness".
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ckpt/checkpoint.h"  // atlas-lint: allow(layer-dag) ckpt is the passive serialization substrate; consuming its codec interface does not invert control flow
#include "stats/ecdf.h"
#include "stats/powerlaw.h"
#include "trace/block.h"
#include "trace/trace_buffer.h"
#include "util/flat_hash.h"

namespace atlas::analysis {

struct PopularityResult {
  std::string site;
  // Request counts per distinct object, split by class.
  stats::Ecdf video_counts;
  stats::Ecdf image_counts;
  // All classes combined.
  stats::Ecdf all_counts;
  // Skewness summaries over all objects.
  stats::PowerLawFit power_law;
  double top10_share = 0.0;  // requests owned by the top 10% of objects
  double gini = 0.0;

  // Fraction of objects with exactly one request (the long tail's floor).
  double SingletonFraction() const;
};

// Single-pass accumulator behind ComputePopularity; O(distinct objects)
// state.
class PopularityAccumulator {
 public:
  explicit PopularityAccumulator(std::size_t size_hint = 0);
  void Add(const trace::LogRecord& r);
  // Rows rows[0..n) of b (all of [0, n) when rows is null), in stream
  // order — equivalent to n Add() calls.
  void AddBatch(const trace::RecordBlock& b, const std::uint32_t* rows,
                std::size_t n);
  PopularityResult Finalize(const std::string& site_name);

  void SaveState(ckpt::Writer& w) const;
  void RestoreState(ckpt::Reader& r);

 private:
  util::FlatHashMap<std::uint64_t, std::uint64_t> counts_;
  util::FlatHashMap<std::uint64_t, trace::ContentClass> classes_;
};

PopularityResult ComputePopularity(const trace::TraceBuffer& trace,
                                   const std::string& site_name);

// Raw per-object request counts (used by several downstream analyses).
std::unordered_map<std::uint64_t, std::uint64_t> RequestCountsByObject(
    const trace::TraceBuffer& trace);

}  // namespace atlas::analysis
