#include "analysis/trend_cluster.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "cluster/shape.h"
#include "stats/timeseries.h"
#include "trace/content_class.h"
#include "util/time.h"

namespace atlas::analysis {

double TrendClusterResult::ShareOf(synth::PatternType type) const {
  double total = 0.0;
  for (const auto& c : clusters) {
    if (c.shape == type) total += c.share;
  }
  return total;
}

double TrendClusterResult::MemberShareOf(synth::PatternType type) const {
  if (clustered_objects == 0) return 0.0;
  return static_cast<double>(
             member_shape_counts[static_cast<std::size_t>(type)]) /
         static_cast<double>(clustered_objects);
}

TrendSeriesAccumulator::TrendSeriesAccumulator(
    const TrendClusterConfig& config)
    : config_(config) {}

void TrendSeriesAccumulator::Add(const trace::LogRecord& r) {
  AddOne(r.timestamp_ms, r.url_hash, r.file_type);
}

void TrendSeriesAccumulator::AddOne(std::int64_t ts, std::uint64_t url,
                                    trace::FileType file_type) {
  if (config_.use_class &&
      trace::ClassOf(file_type) != config_.content_class) {
    return;
  }
  auto& acc = accs_[url];
  if (acc.hours.empty()) {
    acc.hours.assign(static_cast<std::size_t>(util::kHoursPerWeek), 0.0);
  }
  ++acc.count;
  const auto hour = static_cast<std::size_t>(std::clamp<std::int64_t>(
      ts / util::kMillisPerHour, 0, util::kHoursPerWeek - 1));
  acc.hours[hour] += 1.0;
}

void TrendSeriesAccumulator::AddBatch(const trace::RecordBlock& b,
                                      const std::uint32_t* rows,
                                      std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = rows ? rows[k] : k;
    AddOne(b.timestamp_ms[i], b.url_hash[i], b.file_type[i]);
  }
}

std::vector<std::pair<std::uint64_t, std::vector<double>>>
TrendSeriesAccumulator::Finalize() {
  // Qualify and rank by request count.
  std::vector<std::pair<std::uint64_t, Acc*>> qualified;
  // qualified is fully sorted below with a deterministic tie-break, so
  // collection order is irrelevant.
  accs_.ForEachMutable([&](std::uint64_t hash, Acc& acc) {
    if (acc.count >= config_.min_requests) qualified.emplace_back(hash, &acc);
  });
  std::sort(qualified.begin(), qualified.end(),
            [](const auto& a, const auto& b) {
              if (a.second->count != b.second->count) {
                return a.second->count > b.second->count;
              }
              return a.first < b.first;  // deterministic tie-break
            });
  if (qualified.size() > config_.max_objects) {
    qualified.resize(config_.max_objects);
  }

  std::vector<std::pair<std::uint64_t, std::vector<double>>> out;
  out.reserve(qualified.size());
  for (auto& [hash, acc] : qualified) {
    // Smooth (objects are sparse at hour granularity), then sum-normalize:
    // shape, not magnitude (the paper's "normalized request count").
    stats::TimeSeries ts(util::kMillisPerHour, acc->hours);
    if (config_.smooth_hours > 1) ts = ts.Smoothed(config_.smooth_hours);
    ts = ts.SumNormalized();
    out.emplace_back(hash, ts.values());
  }
  return out;
}

namespace {
constexpr std::uint32_t kTrendSeriesStateVersion = 1;
}  // namespace

void TrendSeriesAccumulator::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kTrendSeriesStateVersion);
  w.WriteBool(config_.use_class);
  w.WriteU8(static_cast<std::uint8_t>(config_.content_class));
  w.WriteU64(accs_.size());
  for (const std::uint64_t hash : accs_.SortedKeys()) {
    const Acc& acc = accs_.At(hash);
    w.WriteU64(hash);
    w.WriteU64(acc.count);
    w.WriteVecDouble(acc.hours);
  }
}

void TrendSeriesAccumulator::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("trend series accumulator", kTrendSeriesStateVersion);
  const bool saved_use_class = r.ReadBool();
  const auto saved_class = static_cast<trace::ContentClass>(r.ReadU8());
  if (saved_use_class != config_.use_class ||
      (config_.use_class && saved_class != config_.content_class)) {
    throw std::runtime_error(
        "ckpt: trend series class filter mismatch (checkpoint was taken "
        "with a different content-class configuration)");
  }
  accs_.clear();
  const std::uint64_t n = r.ReadU64();
  accs_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t hash = r.ReadU64();
    Acc acc;
    acc.count = r.ReadU64();
    acc.hours = r.ReadVecDouble();
    accs_[hash] = std::move(acc);
  }
}

std::vector<std::pair<std::uint64_t, std::vector<double>>>
BuildObjectHourlySeries(const trace::TraceBuffer& trace,
                        const TrendClusterConfig& config) {
  TrendSeriesAccumulator acc(config);
  for (const auto& r : trace.records()) acc.Add(r);
  return acc.Finalize();
}

TrendClusterResult ClusterTrendSeries(
    std::vector<std::pair<std::uint64_t, std::vector<double>>>
        series_by_object,
    const std::string& site_name, const TrendClusterConfig& config) {
  TrendClusterResult result;
  result.site = site_name;
  result.content_class = config.content_class;
  result.clustered_objects = series_by_object.size();
  if (series_by_object.size() < 2) return result;

  std::vector<std::vector<double>> series;
  series.reserve(series_by_object.size());
  result.object_hashes.reserve(series_by_object.size());
  for (auto& [hash, s] : series_by_object) {
    result.object_hashes.push_back(hash);
    series.push_back(std::move(s));
  }

  const cluster::DistanceMatrix distances =
      cluster::PairwiseDtw(series, config.dtw_band);
  result.dendrogram = cluster::AgglomerativeCluster(distances, config.linkage);
  const std::size_t k = std::min(config.k, series.size());
  result.labels = result.dendrogram.CutAtK(k);
  result.silhouette = cluster::SilhouetteScore(distances, result.labels);

  // Per-member shape votes: a cluster is named by the plurality shape of
  // its members (robust when a cluster's medoid sits near a boundary).
  std::vector<synth::PatternType> member_shape(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    member_shape[i] = cluster::ClassifyShape(series[i]);
    ++result.member_shape_counts[static_cast<std::size_t>(member_shape[i])];
  }

  const auto summaries =
      cluster::SummarizeClusters(distances, series, result.labels);
  result.clusters.reserve(summaries.size());
  for (const auto& s : summaries) {
    TrendCluster c;
    c.label = s.cluster_label;
    c.member_count = s.member_count;
    c.share = static_cast<double>(s.member_count) /
              static_cast<double>(series.size());
    c.medoid_url_hash = result.object_hashes[s.medoid_item];
    c.medoid_series = s.medoid_series;
    c.pointwise_stddev = s.pointwise_stddev;
    std::array<std::size_t, synth::kNumPatternTypes> votes{};
    for (std::size_t i = 0; i < result.labels.size(); ++i) {
      if (result.labels[i] == s.cluster_label) {
        ++votes[static_cast<std::size_t>(member_shape[i])];
      }
    }
    const auto winner = static_cast<std::size_t>(
        std::max_element(votes.begin(), votes.end()) - votes.begin());
    c.shape = static_cast<synth::PatternType>(winner);
    result.clusters.push_back(std::move(c));
  }
  // Largest first (labels from CutAtK are already size-ordered, but the
  // summaries iterate label order; keep it explicit).
  std::sort(result.clusters.begin(), result.clusters.end(),
            [](const TrendCluster& a, const TrendCluster& b) {
              return a.member_count > b.member_count;
            });
  return result;
}

TrendClusterResult ComputeTrendClusters(const trace::TraceBuffer& trace,
                                        const std::string& site_name,
                                        const TrendClusterConfig& config) {
  return ClusterTrendSeries(BuildObjectHourlySeries(trace, config), site_name,
                            config);
}

}  // namespace atlas::analysis
