#include "analysis/devices.h"

#include <unordered_map>

namespace atlas::analysis {

DeviceComposition ComputeDeviceComposition(const trace::TraceBuffer& trace,
                                           const std::string& site_name) {
  DeviceComposition result;
  result.site = site_name;
  const auto& bank = trace::UaBank::Instance();

  // Parse each distinct UA id once (the bank is small); then attribute each
  // unique user to the device of their first-seen UA.
  std::unordered_map<std::uint16_t, trace::UaInfo> parsed;
  const auto info_for = [&](std::uint16_t ua_id) -> const trace::UaInfo& {
    auto it = parsed.find(ua_id);
    if (it == parsed.end()) {
      it = parsed.emplace(ua_id, trace::ParseUserAgent(bank.String(ua_id)))
               .first;
    }
    return it->second;
  };

  std::unordered_map<std::uint64_t, std::uint16_t> user_ua;
  user_ua.reserve(trace.size() / 4 + 1);
  std::array<std::uint64_t, trace::kNumDeviceTypes> request_counts{};
  for (const auto& r : trace.records()) {
    user_ua.emplace(r.user_id, r.user_agent_id);
    ++request_counts[static_cast<std::size_t>(info_for(r.user_agent_id).device)];
  }

  std::array<std::uint64_t, trace::kNumDeviceTypes> user_counts{};
  std::array<std::uint64_t, trace::kNumOsFamilies> os_counts{};
  std::array<std::uint64_t, trace::kNumBrowserFamilies> browser_counts{};
  for (const auto& [user, ua_id] : user_ua) {
    (void)user;
    const auto& info = info_for(ua_id);
    ++user_counts[static_cast<std::size_t>(info.device)];
    ++os_counts[static_cast<std::size_t>(info.os)];
    ++browser_counts[static_cast<std::size_t>(info.browser)];
  }

  result.unique_users = user_ua.size();
  const double users = static_cast<double>(user_ua.size());
  const double requests = static_cast<double>(trace.size());
  if (users > 0.0) {
    for (std::size_t i = 0; i < user_counts.size(); ++i) {
      result.user_share[i] = static_cast<double>(user_counts[i]) / users;
    }
    for (std::size_t i = 0; i < os_counts.size(); ++i) {
      result.os_share[i] = static_cast<double>(os_counts[i]) / users;
    }
    for (std::size_t i = 0; i < browser_counts.size(); ++i) {
      result.browser_share[i] = static_cast<double>(browser_counts[i]) / users;
    }
  }
  if (requests > 0.0) {
    for (std::size_t i = 0; i < request_counts.size(); ++i) {
      result.request_share[i] =
          static_cast<double>(request_counts[i]) / requests;
    }
  }
  return result;
}

}  // namespace atlas::analysis
