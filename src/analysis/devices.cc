#include "analysis/devices.h"

namespace atlas::analysis {

DeviceCompositionAccumulator::DeviceCompositionAccumulator(
    std::size_t size_hint) {
  user_ua_.reserve(size_hint / 4 + 1);
}

// Parse each distinct UA id once (the bank is small); then attribute each
// unique user to the device of their first-seen UA.
const trace::UaInfo& DeviceCompositionAccumulator::InfoFor(
    std::uint16_t ua_id) {
  if (ua_id >= parsed_valid_.size()) {
    parsed_valid_.resize(std::size_t{ua_id} + 1, 0);
    parsed_.resize(std::size_t{ua_id} + 1);
  }
  if (!parsed_valid_[ua_id]) {
    const auto& bank = trace::UaBank::Instance();
    parsed_[ua_id] = trace::ParseUserAgent(bank.String(ua_id));
    parsed_valid_[ua_id] = 1;
  }
  return parsed_[ua_id];
}

void DeviceCompositionAccumulator::Add(const trace::LogRecord& r) {
  user_ua_.InsertIfAbsent(r.user_id, r.user_agent_id);
  ++request_counts_[static_cast<std::size_t>(InfoFor(r.user_agent_id).device)];
  ++requests_;
}

void DeviceCompositionAccumulator::AddBatch(const trace::RecordBlock& b,
                                            const std::uint32_t* rows,
                                            std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = rows ? rows[k] : k;
    const std::uint16_t ua = b.user_agent_id[i];
    user_ua_.InsertIfAbsent(b.user_id[i], ua);
    ++request_counts_[static_cast<std::size_t>(InfoFor(ua).device)];
  }
  requests_ += n;
}

DeviceComposition DeviceCompositionAccumulator::Finalize(
    const std::string& site_name) {
  DeviceComposition result;
  result.site = site_name;

  std::array<std::uint64_t, trace::kNumDeviceTypes> user_counts{};
  std::array<std::uint64_t, trace::kNumOsFamilies> os_counts{};
  std::array<std::uint64_t, trace::kNumBrowserFamilies> browser_counts{};
  // Per-family tallies commute, so table layout order is fine here.
  user_ua_.ForEachMutable([&](std::uint64_t, std::uint16_t& ua_id) {
    const auto& info = InfoFor(ua_id);
    ++user_counts[static_cast<std::size_t>(info.device)];
    ++os_counts[static_cast<std::size_t>(info.os)];
    ++browser_counts[static_cast<std::size_t>(info.browser)];
  });

  result.unique_users = user_ua_.size();
  const double users = static_cast<double>(user_ua_.size());
  const double requests = static_cast<double>(requests_);
  if (users > 0.0) {
    for (std::size_t i = 0; i < user_counts.size(); ++i) {
      result.user_share[i] = static_cast<double>(user_counts[i]) / users;
    }
    for (std::size_t i = 0; i < os_counts.size(); ++i) {
      result.os_share[i] = static_cast<double>(os_counts[i]) / users;
    }
    for (std::size_t i = 0; i < browser_counts.size(); ++i) {
      result.browser_share[i] = static_cast<double>(browser_counts[i]) / users;
    }
  }
  if (requests > 0.0) {
    for (std::size_t i = 0; i < request_counts_.size(); ++i) {
      result.request_share[i] =
          static_cast<double>(request_counts_[i]) / requests;
    }
  }
  return result;
}

DeviceComposition ComputeDeviceComposition(const trace::TraceBuffer& trace,
                                           const std::string& site_name) {
  DeviceCompositionAccumulator acc(trace.size());
  for (const auto& r : trace.records()) acc.Add(r);
  return acc.Finalize(site_name);
}

namespace {
constexpr std::uint32_t kDevicesStateVersion = 1;
}  // namespace

void DeviceCompositionAccumulator::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kDevicesStateVersion);
  w.WriteU64(user_ua_.size());
  for (const std::uint64_t user : user_ua_.SortedKeys()) {
    w.WriteU64(user);
    w.WriteU16(user_ua_.At(user));
  }
  for (const std::uint64_t c : request_counts_) w.WriteU64(c);
  w.WriteU64(requests_);
}

void DeviceCompositionAccumulator::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("device composition accumulator", kDevicesStateVersion);
  user_ua_.clear();
  const std::uint64_t n = r.ReadU64();
  user_ua_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t user = r.ReadU64();
    user_ua_[user] = r.ReadU16();
  }
  for (std::uint64_t& c : request_counts_) c = r.ReadU64();
  requests_ = r.ReadU64();
}

}  // namespace atlas::analysis
