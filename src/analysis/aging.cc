#include "analysis/aging.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/time.h"

namespace atlas::analysis {

AgingResult ComputeAging(const trace::TraceBuffer& trace,
                         const std::string& site_name) {
  AgingResult result;
  result.site = site_name;
  if (trace.empty()) return result;

  struct ObjectLife {
    std::int64_t first_seen = 0;
    // Bitmask of life-days (day 1 = bit 0) with at least one request.
    std::uint32_t active_days = 0;
  };
  std::unordered_map<std::uint64_t, ObjectLife> lives;
  lives.reserve(trace.size() / 4 + 1);

  // Pass 1: first appearance per object.
  for (const auto& r : trace.records()) {
    auto [it, inserted] = lives.try_emplace(r.url_hash,
                                            ObjectLife{r.timestamp_ms, 0});
    if (!inserted) {
      it->second.first_seen = std::min(it->second.first_seen, r.timestamp_ms);
    }
  }
  // Pass 2: mark active life-days.
  for (const auto& r : trace.records()) {
    auto& life = lives.at(r.url_hash);
    const std::int64_t age_ms = r.timestamp_ms - life.first_seen;
    const auto day = static_cast<int>(age_ms / util::kMillisPerDay);  // 0-based
    if (day >= 0 && day < kMaxAgeDays) {
      life.active_days |= (1u << day);
    }
  }

  const std::int64_t trace_end = trace.EndMs();
  std::array<std::uint64_t, kMaxAgeDays> requested{};
  std::uint64_t full_week_objects = 0;
  std::uint64_t full_week_all_days = 0;
  std::uint64_t observable_4plus = 0;
  std::uint64_t silent_after_3 = 0;

  for (const auto& [hash, life] : lives) {
    (void)hash;
    // Number of fully observable life-days for this object.
    const std::int64_t window = trace_end - life.first_seen;
    const auto observable = static_cast<int>(
        std::min<std::int64_t>(window / util::kMillisPerDay + 1, kMaxAgeDays));
    for (int d = 0; d < observable; ++d) {
      ++result.observable_objects[static_cast<std::size_t>(d)];
      if (life.active_days & (1u << d)) {
        ++requested[static_cast<std::size_t>(d)];
      }
    }
    if (observable >= kMaxAgeDays) {
      ++full_week_objects;
      bool all = true;
      for (int d = 0; d < kMaxAgeDays; ++d) {
        if ((life.active_days & (1u << d)) == 0) {
          all = false;
          break;
        }
      }
      if (all) ++full_week_all_days;
    }
    if (observable >= 4) {
      ++observable_4plus;
      // "Not requested after 3 days": no active day beyond day 3 (bits 3+).
      if ((life.active_days >> 3) == 0) ++silent_after_3;
    }
  }

  for (int d = 0; d < kMaxAgeDays; ++d) {
    const auto i = static_cast<std::size_t>(d);
    result.fraction_requested[i] =
        result.observable_objects[i] == 0
            ? 0.0
            : static_cast<double>(requested[i]) /
                  static_cast<double>(result.observable_objects[i]);
    result.fraction_requested_uncorrected[i] =
        lives.empty() ? 0.0
                      : static_cast<double>(requested[i]) /
                            static_cast<double>(lives.size());
  }
  result.requested_all_days =
      full_week_objects == 0 ? 0.0
                             : static_cast<double>(full_week_all_days) /
                                   static_cast<double>(full_week_objects);
  result.silent_after_3_days =
      observable_4plus == 0 ? 0.0
                            : static_cast<double>(silent_after_3) /
                                  static_cast<double>(observable_4plus);
  return result;
}

}  // namespace atlas::analysis
