#include "analysis/aging.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/time.h"

namespace atlas::analysis {

AgingAccumulator::AgingAccumulator(std::size_t size_hint) {
  lives_.reserve(size_hint / 4 + 1);
}

void AgingAccumulator::Add(const trace::LogRecord& r) {
  AddOne(r.timestamp_ms, r.url_hash);
}

void AgingAccumulator::AddOne(std::int64_t ts, std::uint64_t url) {
  if (any_ && ts < last_ts_) {
    throw std::invalid_argument("AgingAccumulator: input not sorted by time");
  }
  any_ = true;
  last_ts_ = ts;
  end_ms_ = ts;  // sorted input: the latest so far
  auto [life, inserted] = lives_.TryEmplace(url);
  if (inserted) life->first_seen = ts;
  const std::int64_t age_ms = ts - life->first_seen;
  const auto day = static_cast<int>(age_ms / util::kMillisPerDay);  // 0-based
  if (day >= 0 && day < kMaxAgeDays) {
    life->active_days |= (1u << day);
  }
}

void AgingAccumulator::AddBatch(const trace::RecordBlock& b,
                                const std::uint32_t* rows, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = rows ? rows[k] : k;
    AddOne(b.timestamp_ms[i], b.url_hash[i]);
  }
}

AgingResult AgingAccumulator::Finalize(const std::string& site_name) {
  AgingResult result;
  result.site = site_name;
  if (lives_.empty()) return result;

  const std::int64_t trace_end = end_ms_;
  std::array<std::uint64_t, kMaxAgeDays> requested{};
  std::uint64_t full_week_objects = 0;
  std::uint64_t full_week_all_days = 0;
  std::uint64_t observable_4plus = 0;
  std::uint64_t silent_after_3 = 0;

  // Per-day integer tallies commute, so table layout order is fine here.
  lives_.ForEach([&](std::uint64_t, const ObjectLife& life) {
    // Number of fully observable life-days for this object.
    const std::int64_t window = trace_end - life.first_seen;
    const auto observable = static_cast<int>(
        std::min<std::int64_t>(window / util::kMillisPerDay + 1, kMaxAgeDays));
    for (int d = 0; d < observable; ++d) {
      ++result.observable_objects[static_cast<std::size_t>(d)];
      if (life.active_days & (1u << d)) {
        ++requested[static_cast<std::size_t>(d)];
      }
    }
    if (observable >= kMaxAgeDays) {
      ++full_week_objects;
      bool all = true;
      for (int d = 0; d < kMaxAgeDays; ++d) {
        if ((life.active_days & (1u << d)) == 0) {
          all = false;
          break;
        }
      }
      if (all) ++full_week_all_days;
    }
    if (observable >= 4) {
      ++observable_4plus;
      // "Not requested after 3 days": no active day beyond day 3 (bits 3+).
      if ((life.active_days >> 3) == 0) ++silent_after_3;
    }
  });

  for (int d = 0; d < kMaxAgeDays; ++d) {
    const auto i = static_cast<std::size_t>(d);
    result.fraction_requested[i] =
        result.observable_objects[i] == 0
            ? 0.0
            : static_cast<double>(requested[i]) /
                  static_cast<double>(result.observable_objects[i]);
    result.fraction_requested_uncorrected[i] =
        lives_.empty() ? 0.0
                       : static_cast<double>(requested[i]) /
                             static_cast<double>(lives_.size());
  }
  result.requested_all_days =
      full_week_objects == 0 ? 0.0
                             : static_cast<double>(full_week_all_days) /
                                   static_cast<double>(full_week_objects);
  result.silent_after_3_days =
      observable_4plus == 0 ? 0.0
                            : static_cast<double>(silent_after_3) /
                                  static_cast<double>(observable_4plus);
  return result;
}

AgingResult ComputeAging(const trace::TraceBuffer& trace,
                         const std::string& site_name) {
  AgingAccumulator acc(trace.size());
  if (trace.IsSortedByTime()) {
    for (const auto& r : trace.records()) acc.Add(r);
  } else {
    // The result is order-independent, so feed a sorted view.
    std::vector<std::uint32_t> order(trace.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return trace[a].timestamp_ms < trace[b].timestamp_ms;
                     });
    for (const auto i : order) acc.Add(trace[i]);
  }
  return acc.Finalize(site_name);
}

namespace {
constexpr std::uint32_t kAgingStateVersion = 1;
}  // namespace

void AgingAccumulator::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kAgingStateVersion);
  w.WriteU64(lives_.size());
  for (const std::uint64_t hash : lives_.SortedKeys()) {
    const ObjectLife& life = lives_.At(hash);
    w.WriteU64(hash);
    w.WriteI64(life.first_seen);
    w.WriteU32(life.active_days);
  }
  w.WriteI64(last_ts_);
  w.WriteI64(end_ms_);
  w.WriteBool(any_);
}

void AgingAccumulator::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("aging accumulator", kAgingStateVersion);
  lives_.clear();
  const std::uint64_t n = r.ReadU64();
  lives_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t hash = r.ReadU64();
    ObjectLife life;
    life.first_seen = r.ReadI64();
    life.active_days = r.ReadU32();
    lives_[hash] = life;
  }
  last_ts_ = r.ReadI64();
  end_ms_ = r.ReadI64();
  any_ = r.ReadBool();
}

}  // namespace atlas::analysis
