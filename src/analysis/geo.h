// Geographic traffic breakdown.
//
// §III: the trace covers "users in four different continents", and every
// CDN provisioning decision in §V is per data center, i.e. per region.
// This analysis groups a trace by the continent inferred from each record's
// timezone offset (the same coarse geolocation an anonymized IP affords)
// and reports demand, unique users, and the UTC peak hour per region.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "stats/timeseries.h"
#include "synth/user_model.h"
#include "trace/stream.h"
#include "trace/trace_buffer.h"

namespace atlas::analysis {

struct ContinentStats {
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
  std::uint64_t unique_users = 0;
  // Request counts per UTC hour-of-day (provisioning is done in UTC).
  std::array<double, 24> utc_hourly_requests{};
  std::array<double, 24> utc_hourly_bytes{};

  int PeakUtcHour() const;
  // Peak-hour byte rate averaged over the trace days, bytes/hour.
  double PeakHourlyBytes(int days) const;
};

struct GeoResult {
  std::string site;
  std::array<ContinentStats, synth::kNumContinents> continents{};
  std::int64_t span_ms = 0;

  const ContinentStats& of(synth::Continent c) const {
    return continents[static_cast<std::size_t>(c)];
  }
  std::uint64_t TotalRequests() const;
  // Fraction of requests from continent c.
  double RequestShare(synth::Continent c) const;
};

// Single pass over a record stream; memory is O(distinct users), never
// O(records), so it works on traces larger than RAM.
GeoResult ComputeGeo(trace::RecordSource& source, const std::string& site_name);

// In-memory convenience over the streaming pass.
GeoResult ComputeGeo(const trace::TraceBuffer& trace,
                     const std::string& site_name);

}  // namespace atlas::analysis
