// User engagement & addiction (Figs. 13, 14).
//
// Fig. 13: per-object scatter of total requests vs. unique users — points
// far above the diagonal are objects popular because one user re-requests
// them ("addiction"); points on the diagonal are popular because many users
// request them once ("viral").
// Fig. 14: CDF of requests-per-user per object: "less than 1% of image
// objects are requested more than 10 times by a user, whereas at least 10%
// of video objects have more than 10 requests per unique user."
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.h"  // atlas-lint: allow(layer-dag) ckpt is the passive serialization substrate; consuming its codec interface does not invert control flow
#include "stats/ecdf.h"
#include "trace/block.h"
#include "trace/record.h"
#include "trace/trace_buffer.h"
#include "util/flat_hash.h"

namespace atlas::analysis {

struct ObjectEngagement {
  std::uint64_t url_hash = 0;
  trace::ContentClass content_class = trace::ContentClass::kOther;
  std::uint64_t requests = 0;
  std::uint64_t unique_users = 0;
  // Maximum requests any single user made for this object.
  std::uint64_t max_requests_per_user = 0;

  double RequestsPerUser() const {
    return unique_users == 0 ? 0.0
                             : static_cast<double>(requests) /
                                   static_cast<double>(unique_users);
  }
};

struct EngagementResult {
  std::string site;
  // Fig. 13 scatter points (every object).
  std::vector<ObjectEngagement> objects;
  // Fig. 14 CDFs of mean requests-per-user, split by class.
  stats::Ecdf video_requests_per_user;
  stats::Ecdf image_requests_per_user;
  // Headline addiction metrics.
  double video_frac_over_10 = 0.0;  // video objects with > 10 req/user
  double image_frac_over_10 = 0.0;
  // Objects whose demand is >= `addicted_ratio` x their user count.
  std::uint64_t addicted_objects = 0;
  std::uint64_t viral_objects = 0;
};

// Single-pass accumulator behind ComputeEngagement; state is one counter
// per distinct (object, user) pair.
class EngagementAccumulator {
 public:
  explicit EngagementAccumulator(double addicted_ratio = 3.0,
                                 std::size_t size_hint = 0);
  void Add(const trace::LogRecord& r);
  // Rows rows[0..n) of b (all of [0, n) when rows is null), in stream
  // order — equivalent to n Add() calls.
  void AddBatch(const trace::RecordBlock& b, const std::uint32_t* rows,
                std::size_t n);
  EngagementResult Finalize(const std::string& site_name);

  void SaveState(ckpt::Writer& w) const;
  void RestoreState(ckpt::Reader& r);

 private:
  double addicted_ratio_;
  util::FlatHashMap<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t,
                    util::FlatPairHash>
      pair_counts_;
  util::FlatHashMap<std::uint64_t, trace::ContentClass> classes_;
};

// `addicted_ratio`: requests/user above which an object counts as
// addiction-driven rather than viral.
EngagementResult ComputeEngagement(const trace::TraceBuffer& trace,
                                   const std::string& site_name,
                                   double addicted_ratio = 3.0);

}  // namespace atlas::analysis
