// Traffic forecasting (§V implication).
//
// "due to their unique diurnal access patterns, it is important to
// separately account for adult traffic in the traffic forecasting models
// and network resource allocation." This module makes that testable: two
// standard short-term load forecasters (seasonal-naive and Holt-Winters
// with a 24h season) trained on the first days of the week and evaluated
// on the remainder. The ablation bench compares forecasting adult+non-adult
// traffic pooled vs. per-class models summed — the paper predicts the
// separated model wins because the phases differ.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "stats/timeseries.h"

namespace atlas::analysis {

struct ForecastResult {
  std::vector<double> predictions;  // one per held-out bucket
  double mae = 0.0;                 // mean absolute error
  double mape = 0.0;                // mean absolute percentage error (on
                                    // buckets with actual > 0)
  double rmse = 0.0;
};

// Repeats the last full season of the training window across the horizon.
// `season` in buckets (24 for hourly series).
ForecastResult SeasonalNaiveForecast(const stats::TimeSeries& series,
                                     std::size_t train_buckets,
                                     std::size_t season = 24);

// Additive Holt-Winters (triple exponential smoothing) with season length
// `season`; alpha/beta/gamma are the level/trend/season smoothing factors.
// Requires train_buckets >= 2 * season.
ForecastResult HoltWintersForecast(const stats::TimeSeries& series,
                                   std::size_t train_buckets,
                                   std::size_t season = 24,
                                   double alpha = 0.25, double beta = 0.02,
                                   double gamma = 0.3);

// Holt-Winters with per-series smoothing parameters chosen by grid search:
// the last season of the training window is held out as validation and the
// (alpha, gamma) pair minimizing its MAE wins. Parameter fitting is what
// makes separated-vs-pooled forecasting a real contest — with *fixed*
// parameters additive Holt-Winters is linear in the data, so the forecast
// of a sum equals the sum of the forecasts exactly.
ForecastResult HoltWintersAutoForecast(const stats::TimeSeries& series,
                                       std::size_t train_buckets,
                                       std::size_t season = 24);

// Hour-of-day template forecasting — the "operator model": assume traffic
// follows a fixed normalized daily profile (e.g. the well-known non-adult
// web curve) and only the daily level varies. Each held-out day's level is
// taken from the last training day; hours are distributed per the template.
// The paper's §V point is precisely that adult traffic violates the
// canonical template, so a pooled template model misallocates.
//
// HourProfile learns a normalized 24-bucket profile from the first
// `buckets` samples of an hourly series (profile sums to 1).
std::array<double, 24> HourProfile(const stats::TimeSeries& series,
                                   std::size_t buckets);

ForecastResult TemplateForecast(const stats::TimeSeries& series,
                                std::size_t train_buckets,
                                const std::array<double, 24>& hour_profile);

// Convenience: forecasts the sum of several component series two ways —
// (a) pooled: forecast the summed series directly;
// (b) separated: forecast each component and add the predictions.
// Returns {pooled, separated} errors against the true summed actuals.
struct PooledVsSeparated {
  ForecastResult pooled;
  ForecastResult separated;
};
PooledVsSeparated ComparePooledVsSeparated(
    const std::vector<stats::TimeSeries>& components,
    std::size_t train_buckets, std::size_t season = 24);

}  // namespace atlas::analysis
