// Figure/report renderers.
//
// Each Render* function prints the same rows/series the corresponding paper
// figure reports, as aligned text tables (and optionally CSV via the shared
// grid helpers). The bench binaries are thin wrappers around these.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "analysis/aging.h"
#include "analysis/caching.h"
#include "analysis/composition.h"
#include "analysis/devices.h"
#include "analysis/engagement.h"
#include "analysis/popularity.h"
#include "analysis/sessions.h"
#include "analysis/sizes.h"
#include "analysis/temporal.h"
#include "analysis/trend_cluster.h"

namespace atlas::analysis {

// §III summary ("323 TB ... 80 million users ...") across sites.
void RenderDatasetSummaries(const std::vector<DatasetSummary>& summaries,
                            std::ostream& out);

// Fig. 1: object counts + class shares per site.
void RenderContentComposition(const std::vector<CompositionResult>& sites,
                              std::ostream& out);
// Fig. 2(a)/(b): request counts and bytes per class per site.
void RenderTrafficComposition(const std::vector<CompositionResult>& sites,
                              std::ostream& out);

// Fig. 3: hourly percentage series (24 rows, one column per site).
void RenderHourlyVolume(const std::vector<HourlyVolume>& sites,
                        std::ostream& out);

// Fig. 4: device mix per site.
void RenderDeviceComposition(const std::vector<DeviceComposition>& sites,
                             std::ostream& out);

// Fig. 5: size CDF grid per site/class + bimodality/threshold stats.
void RenderSizeDistributions(const std::vector<SizeDistributions>& sites,
                             std::ostream& out, std::size_t grid_points = 25);

// Fig. 6: popularity CDFs + skew summaries.
void RenderPopularity(const std::vector<PopularityResult>& sites,
                      std::ostream& out, std::size_t grid_points = 25);

// Fig. 7: fraction of objects requested at each age.
void RenderAging(const std::vector<AgingResult>& sites, std::ostream& out);

// Fig. 8: cluster shares with shape labels (dendrogram summary).
void RenderTrendClusters(const TrendClusterResult& result, std::ostream& out);

// Figs. 9/10: medoid series as sparklines plus +-sigma envelope width.
void RenderClusterMedoids(const TrendClusterResult& result, std::ostream& out,
                          std::size_t width = 56);

// Fig. 11/12: IAT and session-length CDFs at the paper's x-axis points.
void RenderSessions(const std::vector<SessionResult>& sites,
                    std::ostream& out);

// Fig. 13: requests vs. users scatter summary (log-binned) for one site.
void RenderRepeatedAccess(const EngagementResult& result, std::ostream& out);

// Fig. 14: requests-per-user CDFs + addiction headline numbers.
void RenderEngagement(const std::vector<EngagementResult>& sites,
                      std::ostream& out);

// Fig. 15: hit-ratio CDFs + aggregate ratios + popularity correlation.
void RenderCaching(const std::vector<CachingResult>& sites, std::ostream& out);

// Fig. 16: response-code counts per class per site.
void RenderResponseCodes(const std::vector<CachingResult>& sites,
                         std::ostream& out);

}  // namespace atlas::analysis
