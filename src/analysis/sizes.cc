#include "analysis/sizes.h"

#include <unordered_map>

#include "stats/histogram.h"
#include "trace/content_class.h"

namespace atlas::analysis {

double SizeDistributions::VideoAboveMb() const {
  if (video.empty()) return 0.0;
  return 1.0 - video.Evaluate(1e6);
}

double SizeDistributions::ImageBelowMb() const {
  if (image.empty()) return 0.0;
  return image.Evaluate(1e6);
}

SizeDistributions ComputeSizeDistributions(const trace::TraceBuffer& trace,
                                           const std::string& site_name) {
  SizeDistributions result;
  result.site = site_name;
  std::unordered_map<std::uint64_t, const trace::LogRecord*> firsts;
  firsts.reserve(trace.size() / 4 + 1);
  for (const auto& r : trace.records()) {
    firsts.emplace(r.url_hash, &r);
  }
  for (const auto& [hash, rec] : firsts) {
    (void)hash;
    const double size = static_cast<double>(rec->object_size);
    switch (trace::ClassOf(rec->file_type)) {
      case trace::ContentClass::kVideo:
        result.video.Add(size);
        break;
      case trace::ContentClass::kImage:
        result.image.Add(size);
        break;
      case trace::ContentClass::kOther:
        result.other.Add(size);
        break;
    }
  }
  result.video.Finalize();
  result.image.Finalize();
  result.other.Finalize();
  return result;
}

bool ImageSizesAreBimodal(const stats::Ecdf& image_sizes) {
  if (image_sizes.count() < 20) return false;
  stats::LogHistogram hist(100.0, 1e8, 4);
  for (double s : image_sizes.sorted_samples()) hist.Add(s);
  const auto modes = hist.Modes(0.04);
  if (modes.size() < 2) return false;
  // Require the outer modes to be at least a decade apart (thumbnail vs.
  // full-resolution populations).
  return modes.back() / modes.front() >= 10.0;
}

}  // namespace atlas::analysis
