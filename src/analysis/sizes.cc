#include "analysis/sizes.h"

#include "stats/histogram.h"
#include "trace/content_class.h"

namespace atlas::analysis {

double SizeDistributions::VideoAboveMb() const {
  if (video.empty()) return 0.0;
  return 1.0 - video.Evaluate(1e6);
}

double SizeDistributions::ImageBelowMb() const {
  if (image.empty()) return 0.0;
  return image.Evaluate(1e6);
}

SizeDistributionsAccumulator::SizeDistributionsAccumulator(
    std::size_t size_hint) {
  firsts_.reserve(size_hint / 4 + 1);
}

void SizeDistributionsAccumulator::Add(const trace::LogRecord& r) {
  firsts_.InsertIfAbsent(r.url_hash, FirstSeen{r.object_size, r.file_type});
}

void SizeDistributionsAccumulator::AddBatch(const trace::RecordBlock& b,
                                            const std::uint32_t* rows,
                                            std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = rows ? rows[k] : k;
    firsts_.InsertIfAbsent(b.url_hash[i],
                           FirstSeen{b.object_size[i], b.file_type[i]});
  }
}

SizeDistributions SizeDistributionsAccumulator::Finalize(
    const std::string& site_name) {
  SizeDistributions result;
  result.site = site_name;
  // The Ecdfs sort on Finalize, so table layout order is fine here.
  firsts_.ForEach([&](std::uint64_t, const FirstSeen& first) {
    const double size = static_cast<double>(first.object_size);
    switch (trace::ClassOf(first.file_type)) {
      case trace::ContentClass::kVideo:
        result.video.Add(size);
        break;
      case trace::ContentClass::kImage:
        result.image.Add(size);
        break;
      case trace::ContentClass::kOther:
        result.other.Add(size);
        break;
    }
  });
  result.video.Finalize();
  result.image.Finalize();
  result.other.Finalize();
  return result;
}

SizeDistributions ComputeSizeDistributions(const trace::TraceBuffer& trace,
                                           const std::string& site_name) {
  SizeDistributionsAccumulator acc(trace.size());
  for (const auto& r : trace.records()) acc.Add(r);
  return acc.Finalize(site_name);
}

namespace {
constexpr std::uint32_t kFirstSeenStateVersion = 1;
}  // namespace

void SizeDistributionsAccumulator::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kFirstSeenStateVersion);
  w.WriteU64(firsts_.size());
  for (const std::uint64_t hash : firsts_.SortedKeys()) {
    const FirstSeen& f = firsts_.At(hash);
    w.WriteU64(hash);
    w.WriteU64(f.object_size);
    w.WriteU8(static_cast<std::uint8_t>(f.file_type));
  }
}

void SizeDistributionsAccumulator::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("size distributions accumulator",
                  kFirstSeenStateVersion);
  firsts_.clear();
  const std::uint64_t n = r.ReadU64();
  firsts_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t hash = r.ReadU64();
    FirstSeen f;
    f.object_size = r.ReadU64();
    f.file_type = static_cast<trace::FileType>(r.ReadU8());
    firsts_[hash] = f;
  }
}

bool ImageSizesAreBimodal(const stats::Ecdf& image_sizes) {
  if (image_sizes.count() < 20) return false;
  stats::LogHistogram hist(100.0, 1e8, 4);
  for (double s : image_sizes.sorted_samples()) hist.Add(s);
  const auto modes = hist.Modes(0.04);
  if (modes.size() < 2) return false;
  // Require the outer modes to be at least a decade apart (thumbnail vs.
  // full-resolution populations).
  return modes.back() / modes.front() >= 10.0;
}

}  // namespace atlas::analysis
