// Content & traffic composition (Figs. 1, 2a, 2b and the §III summary).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "ckpt/checkpoint.h"  // atlas-lint: allow(layer-dag) ckpt is the passive serialization substrate; consuming its codec interface does not invert control flow
#include "trace/block.h"
#include "trace/trace_buffer.h"
#include "util/flat_hash.h"

namespace atlas::analysis {

// Per-content-class breakdown of one site's catalog and traffic.
struct CompositionResult {
  std::string site;
  // Fig. 1: distinct objects per class (an object's class comes from its
  // file type; objects appear once no matter how often requested).
  std::array<std::uint64_t, trace::kNumContentClasses> objects{};
  // Fig. 2(a): request count per class.
  std::array<std::uint64_t, trace::kNumContentClasses> requests{};
  // Fig. 2(b): delivered bytes per class.
  std::array<std::uint64_t, trace::kNumContentClasses> bytes{};

  std::uint64_t TotalObjects() const;
  std::uint64_t TotalRequests() const;
  std::uint64_t TotalBytes() const;
  double ObjectShare(trace::ContentClass c) const;
  double RequestShare(trace::ContentClass c) const;
  double ByteShare(trace::ContentClass c) const;
};

// Single-pass accumulator behind ComputeComposition; feed records in any
// order, then Finalize exactly once. State is O(distinct objects), so a
// week-long trace streams through without materializing.
class CompositionAccumulator {
 public:
  explicit CompositionAccumulator(std::size_t size_hint = 0);
  void Add(const trace::LogRecord& r);
  // Batch path: rows `rows[0..n)` of `b` (all of [0, n) when rows is null),
  // in stream order — equivalent to n Add() calls. Same contract for every
  // accumulator's AddBatch.
  void AddBatch(const trace::RecordBlock& b, const std::uint32_t* rows,
                std::size_t n);
  CompositionResult Finalize(const std::string& site_name);

  void SaveState(ckpt::Writer& w) const;
  void RestoreState(ckpt::Reader& r);

 private:
  CompositionResult result_;
  util::FlatHashMap<std::uint64_t, trace::ContentClass> seen_;
};

// Computes composition for a (single-site) trace.
CompositionResult ComputeComposition(const trace::TraceBuffer& site_trace,
                                     const std::string& site_name);

// §III dataset summary: records, users, objects, bytes, duration.
struct DatasetSummary {
  std::string label;
  std::uint64_t records = 0;
  std::uint64_t users = 0;
  std::uint64_t objects = 0;
  std::uint64_t bytes = 0;
  std::int64_t start_ms = 0;
  std::int64_t end_ms = 0;
};

// Streaming counterpart of ComputeDatasetSummary; O(users + objects) state.
class DatasetSummaryAccumulator {
 public:
  explicit DatasetSummaryAccumulator(std::size_t size_hint = 0);
  void Add(const trace::LogRecord& r);
  void AddBatch(const trace::RecordBlock& b, const std::uint32_t* rows,
                std::size_t n);
  DatasetSummary Finalize(const std::string& label);

  void SaveState(ckpt::Writer& w) const;
  void RestoreState(ckpt::Reader& r);

 private:
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  std::int64_t start_ms_ = 0;
  std::int64_t end_ms_ = 0;
  util::FlatHashSet<std::uint64_t> users_;
  util::FlatHashSet<std::uint64_t> objects_;
};

DatasetSummary ComputeDatasetSummary(const trace::TraceBuffer& trace,
                                     const std::string& label);

}  // namespace atlas::analysis
