// Popularity-trend clustering (Figs. 8, 9, 10).
//
// The paper's pipeline, end to end: build the hourly request-count time
// series of each (sufficiently requested) object, normalize, compute
// pairwise DTW distances, agglomerate into a dendrogram, cut into k
// clusters, then summarize each cluster by its medoid with point-wise
// standard deviations and name it via the shape classifier.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.h"  // atlas-lint: allow(layer-dag) ckpt is the passive serialization substrate; consuming its codec interface does not invert control flow
#include "cluster/dtw.h"
#include "cluster/linkage.h"
#include "cluster/medoid.h"
#include "synth/site_profile.h"
#include "trace/block.h"
#include "trace/record.h"
#include "trace/trace_buffer.h"
#include "util/flat_hash.h"

namespace atlas::analysis {

struct TrendClusterConfig {
  // Only objects with at least this many requests get a series (sparser
  // objects have no meaningful shape).
  std::uint64_t min_requests = 30;
  // Cap on the number of objects clustered (top-by-request-count beyond the
  // threshold); DTW + linkage are O(n^2)/O(n^3).
  std::size_t max_objects = 250;
  // Centered moving-average window (hours) applied before normalization;
  // individual object series are sparse and DTW needs the envelope, not the
  // shot noise. 1 disables smoothing.
  std::size_t smooth_hours = 7;
  // Restrict to one content class (the paper clusters video and image
  // separately); nullopt-like flag: use_class false clusters everything.
  bool use_class = true;
  trace::ContentClass content_class = trace::ContentClass::kVideo;
  // Number of flat clusters to cut the dendrogram into.
  std::size_t k = 5;
  // Sakoe-Chiba band for DTW, in hours; 0 = unconstrained, which lets a
  // Monday burst align with a Thursday burst (how short-lived objects
  // injected on different days end up in one cluster).
  std::size_t dtw_band = 0;
  cluster::Linkage linkage = cluster::Linkage::kAverage;
};

struct TrendCluster {
  std::size_t label = 0;
  std::size_t member_count = 0;
  double share = 0.0;  // of clustered objects
  synth::PatternType shape = synth::PatternType::kOutlier;
  std::uint64_t medoid_url_hash = 0;
  std::vector<double> medoid_series;      // normalized hourly series
  std::vector<double> pointwise_stddev;
};

struct TrendClusterResult {
  std::string site;
  trace::ContentClass content_class = trace::ContentClass::kVideo;
  std::size_t clustered_objects = 0;
  std::vector<TrendCluster> clusters;  // ordered by decreasing size
  // Per-object shape classifications across all clustered objects (finer
  // grained than the per-cluster plurality labels).
  std::array<std::size_t, synth::kNumPatternTypes> member_shape_counts{};
  double silhouette = 0.0;
  cluster::Dendrogram dendrogram{1, {}};
  // url hash of each clustered object, in matrix order, plus its label —
  // kept for closed-loop validation against generator ground truth.
  std::vector<std::uint64_t> object_hashes;
  std::vector<std::size_t> labels;

  // Total share across clusters classified as `type`.
  double ShareOf(synth::PatternType type) const;
  // Share of clustered objects whose own series classifies as `type`.
  double MemberShareOf(synth::PatternType type) const;
};

TrendClusterResult ComputeTrendClusters(const trace::TraceBuffer& trace,
                                        const std::string& site_name,
                                        const TrendClusterConfig& config);

// Single-pass accumulator behind BuildObjectHourlySeries: one 168-bin
// hourly histogram per qualifying-class object, so the series matrix is
// built without holding the trace. Finalize applies the qualification
// threshold, the deterministic count/hash ranking, smoothing, and
// sum-normalization.
class TrendSeriesAccumulator {
 public:
  explicit TrendSeriesAccumulator(const TrendClusterConfig& config);
  void Add(const trace::LogRecord& r);
  // Rows rows[0..n) of b (all of [0, n) when rows is null), in stream
  // order — equivalent to n Add() calls.
  void AddBatch(const trace::RecordBlock& b, const std::uint32_t* rows,
                std::size_t n);
  std::vector<std::pair<std::uint64_t, std::vector<double>>> Finalize();

  void SaveState(ckpt::Writer& w) const;
  void RestoreState(ckpt::Reader& r);

 private:
  struct Acc {
    std::uint64_t count = 0;
    std::vector<double> hours;
  };
  void AddOne(std::int64_t ts, std::uint64_t url, trace::FileType file_type);

  TrendClusterConfig config_;
  util::FlatHashMap<std::uint64_t, Acc> accs_;
};

// Clustering back half of ComputeTrendClusters, operating on a prebuilt
// series matrix (from TrendSeriesAccumulator or BuildObjectHourlySeries).
TrendClusterResult ClusterTrendSeries(
    std::vector<std::pair<std::uint64_t, std::vector<double>>>
        series_by_object,
    const std::string& site_name, const TrendClusterConfig& config);

// Helper: hourly, sum-normalized request-count series per qualifying object
// (exposed for tests and the medoid figure benches).
std::vector<std::pair<std::uint64_t, std::vector<double>>>
BuildObjectHourlySeries(const trace::TraceBuffer& trace,
                        const TrendClusterConfig& config);

}  // namespace atlas::analysis
