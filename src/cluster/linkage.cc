#include "cluster/linkage.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "util/str.h"

namespace atlas::cluster {

const char* ToString(Linkage linkage) {
  switch (linkage) {
    case Linkage::kSingle:
      return "single";
    case Linkage::kComplete:
      return "complete";
    case Linkage::kAverage:
      return "average";
  }
  return "?";
}

Dendrogram::Dendrogram(std::size_t leaves, std::vector<Merge> merges)
    : leaves_(leaves), merges_(std::move(merges)) {
  if (leaves < 1) throw std::invalid_argument("Dendrogram: no leaves");
  if (merges_.size() != leaves - 1) {
    throw std::invalid_argument("Dendrogram: merge count must be leaves-1");
  }
}

namespace {

// Resolves the flat labels implied by applying the first `applied` merges.
std::vector<std::size_t> LabelsFromMerges(std::size_t leaves,
                                          const std::vector<Merge>& merges,
                                          std::size_t applied) {
  // Union-find over node ids (leaves + internal).
  std::vector<std::size_t> parent(leaves + merges.size());
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  std::function<std::size_t(std::size_t)> find =
      [&](std::size_t x) -> std::size_t {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t k = 0; k < applied; ++k) {
    const std::size_t node = leaves + k;
    parent[find(merges[k].left)] = node;
    parent[find(merges[k].right)] = node;
  }
  // Compact roots to labels, ordered by decreasing cluster size (stable by
  // first appearance on ties).
  std::vector<std::size_t> root_of(leaves);
  std::vector<std::size_t> roots;
  std::vector<std::size_t> counts;
  for (std::size_t i = 0; i < leaves; ++i) {
    const std::size_t r = find(i);
    root_of[i] = r;
    auto it = std::find(roots.begin(), roots.end(), r);
    if (it == roots.end()) {
      roots.push_back(r);
      counts.push_back(1);
    } else {
      ++counts[static_cast<std::size_t>(it - roots.begin())];
    }
  }
  std::vector<std::size_t> order(roots.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return counts[a] > counts[b];
  });
  std::vector<std::size_t> label_of_root(roots.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    label_of_root[order[rank]] = rank;
  }
  std::vector<std::size_t> labels(leaves);
  for (std::size_t i = 0; i < leaves; ++i) {
    const auto it = std::find(roots.begin(), roots.end(), root_of[i]);
    labels[i] = label_of_root[static_cast<std::size_t>(it - roots.begin())];
  }
  return labels;
}

}  // namespace

std::vector<std::size_t> Dendrogram::CutAtK(std::size_t k) const {
  if (k < 1 || k > leaves_) throw std::invalid_argument("CutAtK: bad k");
  return LabelsFromMerges(leaves_, merges_, leaves_ - k);
}

std::vector<std::size_t> Dendrogram::CutAtHeight(double threshold) const {
  std::size_t applied = 0;
  // Merges are produced in nondecreasing height order for single/average/
  // complete linkage on a metric, but guard anyway: apply the prefix of
  // merges whose height is within the threshold.
  while (applied < merges_.size() && merges_[applied].height <= threshold) {
    ++applied;
  }
  return LabelsFromMerges(leaves_, merges_, applied);
}

std::vector<std::size_t> Dendrogram::ClusterSizes(
    const std::vector<std::size_t>& labels) {
  std::size_t k = 0;
  for (std::size_t l : labels) k = std::max(k, l + 1);
  std::vector<std::size_t> sizes(k, 0);
  for (std::size_t l : labels) ++sizes[l];
  return sizes;
}

std::string Dendrogram::RenderClusterShares(
    const std::vector<std::size_t>& labels,
    const std::vector<std::string>& names) const {
  const auto sizes = ClusterSizes(labels);
  const double total = static_cast<double>(labels.size());
  std::string out;
  for (std::size_t c = 0; c < sizes.size(); ++c) {
    const std::string name =
        c < names.size() ? names[c] : "cluster-" + std::to_string(c);
    out += util::PadRight(name, 16) + " " +
           util::PadLeft(util::FormatPercent(
                             static_cast<double>(sizes[c]) / total, 0),
                         5) +
           "  (" + std::to_string(sizes[c]) + " objects)\n";
  }
  return out;
}

Dendrogram AgglomerativeCluster(const DistanceMatrix& distances,
                                Linkage linkage) {
  const std::size_t n = distances.size();
  // Working copy of pairwise distances between active clusters.
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      d[i][j] = distances.Get(i, j);
    }
  }
  std::vector<bool> active(n, true);
  std::vector<std::size_t> node_id(n);   // current dendrogram node per slot
  std::vector<std::size_t> cluster_size(n, 1);
  std::iota(node_id.begin(), node_id.end(), std::size_t{0});

  std::vector<Merge> merges;
  merges.reserve(n - 1);
  for (std::size_t step = 0; step + 1 < n; ++step) {
    // Find the closest active pair.
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (d[i][j] < best) {
          best = d[i][j];
          bi = i;
          bj = j;
        }
      }
    }
    // Merge bj into bi; Lance-Williams update of distances to bi.
    const double ni = static_cast<double>(cluster_size[bi]);
    const double nj = static_cast<double>(cluster_size[bj]);
    for (std::size_t k = 0; k < n; ++k) {
      if (!active[k] || k == bi || k == bj) continue;
      double nd = 0.0;
      switch (linkage) {
        case Linkage::kSingle:
          nd = std::min(d[bi][k], d[bj][k]);
          break;
        case Linkage::kComplete:
          nd = std::max(d[bi][k], d[bj][k]);
          break;
        case Linkage::kAverage:
          nd = (ni * d[bi][k] + nj * d[bj][k]) / (ni + nj);
          break;
      }
      d[bi][k] = nd;
      d[k][bi] = nd;
    }
    active[bj] = false;
    Merge merge;
    merge.left = node_id[bi];
    merge.right = node_id[bj];
    merge.height = best;
    merge.size = cluster_size[bi] + cluster_size[bj];
    cluster_size[bi] += cluster_size[bj];
    node_id[bi] = n + step;
    merges.push_back(merge);
  }
  return Dendrogram(n, std::move(merges));
}

double SilhouetteScore(const DistanceMatrix& distances,
                       const std::vector<std::size_t>& labels) {
  const std::size_t n = distances.size();
  if (labels.size() != n) {
    throw std::invalid_argument("SilhouetteScore: label count mismatch");
  }
  std::size_t k = 0;
  for (std::size_t l : labels) k = std::max(k, l + 1);
  if (k < 2) return 0.0;
  const auto sizes = Dendrogram::ClusterSizes(labels);

  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (sizes[labels[i]] < 2) continue;  // singleton: contributes 0
    std::vector<double> mean_dist(k, 0.0);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      mean_dist[labels[j]] += distances.Get(i, j);
      ++counts[labels[j]];
    }
    const double a = mean_dist[labels[i]] /
                     static_cast<double>(sizes[labels[i]] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      if (c == labels[i] || counts[c] == 0) continue;
      b = std::min(b, mean_dist[c] / static_cast<double>(counts[c]));
    }
    if (!std::isfinite(b)) continue;
    const double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
  }
  return total / static_cast<double>(n);
}

}  // namespace atlas::cluster
