#include "cluster/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/par.h"

namespace atlas::cluster {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

double DtwDistance(const std::vector<double>& a, const std::vector<double>& b,
                   std::size_t band) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) throw std::invalid_argument("DtwDistance: empty series");
  // A band narrower than the length difference cannot align the ends.
  const std::size_t min_band = n > m ? n - m : m - n;
  const std::size_t w = band == 0 ? std::max(n, m) : std::max(band, min_band);

  // Two-row dynamic program; rows indexed by i (series a).
  std::vector<double> prev(m + 1, kInf), curr(m + 1, kInf);
  prev[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    const std::size_t j_lo = i > w ? i - w : 1;
    const std::size_t j_hi = std::min(m, i + w);
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = std::abs(a[i - 1] - b[j - 1]);
      const double best =
          std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = cost + best;
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

std::vector<std::pair<std::size_t, std::size_t>> DtwPath(
    const std::vector<double>& a, const std::vector<double>& b,
    std::size_t band) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) throw std::invalid_argument("DtwPath: empty series");
  const std::size_t min_band = n > m ? n - m : m - n;
  const std::size_t w = band == 0 ? std::max(n, m) : std::max(band, min_band);

  // Full matrix (path recovery needs it); fine for the figure-sized inputs.
  std::vector<std::vector<double>> d(n + 1, std::vector<double>(m + 1, kInf));
  d[0][0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t j_lo = i > w ? i - w : 1;
    const std::size_t j_hi = std::min(m, i + w);
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = std::abs(a[i - 1] - b[j - 1]);
      d[i][j] = cost + std::min({d[i - 1][j], d[i][j - 1], d[i - 1][j - 1]});
    }
  }
  std::vector<std::pair<std::size_t, std::size_t>> path;
  std::size_t i = n, j = m;
  while (i > 0 || j > 0) {
    path.emplace_back(i - 1, j - 1);
    if (i == 1 && j == 1) break;
    double up = i > 1 ? d[i - 1][j] : kInf;
    double left = j > 1 ? d[i][j - 1] : kInf;
    double diag = (i > 1 && j > 1) ? d[i - 1][j - 1] : kInf;
    if (diag <= up && diag <= left) {
      --i;
      --j;
    } else if (up <= left) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

DistanceMatrix::DistanceMatrix(std::size_t n) : n_(n) {
  if (n < 2) throw std::invalid_argument("DistanceMatrix: need >= 2 items");
  data_.assign(n * (n - 1) / 2, 0.0);
}

std::size_t DistanceMatrix::Index(std::size_t i, std::size_t j) const {
  if (i == j || i >= n_ || j >= n_) {
    throw std::out_of_range("DistanceMatrix: bad indices");
  }
  if (i > j) std::swap(i, j);
  // Condensed upper-triangular index.
  return i * n_ - i * (i + 1) / 2 + (j - i - 1);
}

double DistanceMatrix::Get(std::size_t i, std::size_t j) const {
  if (i == j) return 0.0;
  return data_[Index(i, j)];
}

void DistanceMatrix::Set(std::size_t i, std::size_t j, double d) {
  data_[Index(i, j)] = d;
}

DistanceMatrix PairwiseDtw(const std::vector<std::vector<double>>& series,
                           std::size_t band, int threads) {
  const std::size_t n = series.size();
  DistanceMatrix m(n);
  // One shard per row i (cells j > i). Rows shrink as i grows; the pool's
  // dynamic scheduling absorbs the imbalance. Each cell is written exactly
  // once to its own condensed-matrix slot, so no synchronization is needed
  // and the matrix is bit-identical at any thread count.
  util::ParallelFor(
      n == 0 ? 0 : n - 1,
      [&](std::size_t i) {
        for (std::size_t j = i + 1; j < n; ++j) {
          m.Set(i, j, DtwDistance(series[i], series[j], band));
        }
      },
      threads);
  return m;
}

}  // namespace atlas::cluster
