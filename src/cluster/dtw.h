// Dynamic Time Warping.
//
// §IV-B: "We use Dynamic Time Warping (DTW) to compute similarity between
// two request count time series ... Using a dynamic programming approach,
// DTW computes all possible sets of mappings (warping paths) between two
// time series. The total cost of the optimal warping path is defined as the
// DTW distance."
//
// The implementation is the standard O(N*M) dynamic program with an
// optional Sakoe-Chiba band (|i - j| <= band) that both speeds up the
// computation and prevents pathological warps; band == 0 means
// unconstrained.
#pragma once

#include <cstddef>
#include <vector>

namespace atlas::cluster {

// Point-wise cost |a_i - b_j| ("the area between the time warped time
// series"). Returns +inf when the band makes alignment infeasible (cannot
// happen for band >= |N - M|). Throws on empty inputs.
double DtwDistance(const std::vector<double>& a, const std::vector<double>& b,
                   std::size_t band = 0);

// Optimal warping path as (i, j) index pairs, for tests and visualization.
std::vector<std::pair<std::size_t, std::size_t>> DtwPath(
    const std::vector<double>& a, const std::vector<double>& b,
    std::size_t band = 0);

// Condensed symmetric distance matrix over n items.
class DistanceMatrix {
 public:
  explicit DistanceMatrix(std::size_t n);

  std::size_t size() const { return n_; }
  double Get(std::size_t i, std::size_t j) const;
  void Set(std::size_t i, std::size_t j, double d);

 private:
  std::size_t Index(std::size_t i, std::size_t j) const;
  std::size_t n_;
  std::vector<double> data_;
};

// Pairwise DTW over a set of equal-length series. Rows of the condensed
// matrix are computed in parallel (`threads` <= 0 means
// util::DefaultThreads()); every cell (i, j) is independent, so the result
// is identical for any thread count.
DistanceMatrix PairwiseDtw(const std::vector<std::vector<double>>& series,
                           std::size_t band = 0, int threads = 0);

}  // namespace atlas::cluster
