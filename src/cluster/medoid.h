// Cluster medoids and spread.
//
// §IV-B: "we identify a representative sample object from each cluster and
// plot its normalized request count time series with point-wise standard
// deviations. ... a medoid is defined as the most centrally located point
// of a cluster" — Figures 9 and 10 are exactly (medoid, pointwise sigma)
// per cluster; MedoidSummary carries both.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/dtw.h"

namespace atlas::cluster {

// Index (into the cluster member list) of the member minimizing total
// distance to all other members. Throws on an empty cluster.
std::size_t MedoidIndex(const DistanceMatrix& distances,
                        const std::vector<std::size_t>& member_ids);

struct MedoidSummary {
  std::size_t cluster_label = 0;
  std::size_t member_count = 0;
  std::size_t medoid_item = 0;       // index into the original item list
  std::vector<double> medoid_series; // normalized request-count series
  std::vector<double> pointwise_stddev;
};

// Builds the Fig. 9/10 data for every cluster in a labeling. `series` holds
// the (already normalized) per-item series in the same order the distance
// matrix was built from.
std::vector<MedoidSummary> SummarizeClusters(
    const DistanceMatrix& distances,
    const std::vector<std::vector<double>>& series,
    const std::vector<std::size_t>& labels);

// ASCII sparkline of a series (for terminal figure output).
std::string Sparkline(const std::vector<double>& series, std::size_t width);

}  // namespace atlas::cluster
