#include "cluster/shape.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace atlas::cluster {
namespace {

constexpr double kActiveThresholdFrac = 0.05;

// Best (max-mass) sliding window of `width` hours; returns mass fraction.
double BestWindowMass(const std::vector<double>& v, std::size_t width,
                      double total) {
  if (total <= 0.0 || v.empty()) return 0.0;
  width = std::min(width, v.size());
  double window = std::accumulate(v.begin(), v.begin() + static_cast<long>(width), 0.0);
  double best = window;
  for (std::size_t i = width; i < v.size(); ++i) {
    window += v[i] - v[i - width];
    best = std::max(best, window);
  }
  return best / total;
}

}  // namespace

ShapeFeatures ExtractShapeFeatures(const std::vector<double>& hourly) {
  ShapeFeatures f;
  if (hourly.empty()) return f;
  f.total = std::accumulate(hourly.begin(), hourly.end(), 0.0);
  if (f.total <= 0.0) return f;

  const double peak = *std::max_element(hourly.begin(), hourly.end());
  const double threshold = peak * kActiveThresholdFrac;
  std::size_t first = hourly.size(), last = 0, active = 0, peak_at = 0;
  for (std::size_t i = 0; i < hourly.size(); ++i) {
    if (hourly[i] > threshold) {
      first = std::min(first, i);
      last = std::max(last, i);
      ++active;
    }
    if (hourly[i] > hourly[peak_at]) peak_at = i;
  }
  if (first > last) return f;  // all below threshold (cannot happen: peak>0)

  f.active_fraction = static_cast<double>(active) /
                      static_cast<double>(hourly.size());
  f.active_span_hours = static_cast<double>(last - first + 1);
  f.first_active_hour = static_cast<double>(first);
  f.time_to_peak_hours = static_cast<double>(peak_at - first);
  // Decay: last active hour after the peak.
  f.decay_hours = static_cast<double>(last >= peak_at ? last - peak_at : 0);

  // Autocorrelation at 24h within the active window.
  const std::size_t n = last - first + 1;
  if (n > 25) {
    double mean = 0.0;
    for (std::size_t i = first; i <= last; ++i) mean += hourly[i];
    mean /= static_cast<double>(n);
    double num = 0.0, den = 0.0;
    for (std::size_t i = first; i <= last; ++i) {
      den += (hourly[i] - mean) * (hourly[i] - mean);
    }
    for (std::size_t i = first; i + 24 <= last; ++i) {
      num += (hourly[i] - mean) * (hourly[i + 24] - mean);
    }
    f.autocorr_24h = den > 0.0 ? num / den : 0.0;
  }

  f.peak_day_mass = BestWindowMass(hourly, 24, f.total);
  f.peak_6h_mass = BestWindowMass(hourly, 6, f.total);

  // Decay: mass in the first vs. second half of the active window.
  const std::size_t mid = first + (last - first + 1) / 2;
  double first_half = 0.0, second_half = 0.0;
  for (std::size_t i = first; i <= last; ++i) {
    (i < mid ? first_half : second_half) += hourly[i];
  }
  f.decay_ratio = second_half > 0.0
                      ? first_half / second_half
                      : (first_half > 0.0 ? 100.0 : 1.0);
  return f;
}

synth::PatternType ClassifyShape(const std::vector<double>& hourly) {
  const ShapeFeatures f = ExtractShapeFeatures(hourly);
  using synth::PatternType;

  // Flash crowd: most mass in one tight burst *after* a dormant lead-in.
  // The lead-in can be either pre-peak activity (time_to_peak) or silence
  // below the activity threshold (first_active_hour). Without injection
  // times a short-lived object injected mid-week is indistinguishable from
  // a flash crowd — the same ambiguity the paper's eyeballing has.
  const double lead_in_hours = f.first_active_hour + f.time_to_peak_hours;
  if (lead_in_hours > 24.0 && f.active_span_hours <= 48.0 &&
      f.peak_6h_mass > 0.35 && f.autocorr_24h < 0.3) {
    return PatternType::kFlashCrowd;
  }
  // Short-lived: the whole observable life fits within ~a day and the peak
  // comes right away.
  if (f.active_span_hours <= 30.0 && f.time_to_peak_hours <= 12.0) {
    return PatternType::kShortLived;
  }
  // Long-lived before diurnal: a decaying multi-day series can carry 24h
  // periodicity (the paper's long-lived medoids "decay in a diurnal
  // fashion"), so the decaying envelope is the discriminator.
  if (f.time_to_peak_hours <= 36.0 && f.active_span_hours > 30.0 &&
      f.decay_hours >= 18.0 && f.decay_ratio > 2.2) {
    return PatternType::kLongLived;
  }
  // Diurnal: sustained over several days with no decaying envelope and mass
  // spread across days. 24h autocorrelation supports the call but is noisy
  // for sparsely-requested objects, so near-uniform day mass also qualifies.
  if (f.active_span_hours >= 72.0 && f.peak_day_mass < 0.5 &&
      f.decay_ratio <= 2.2 && f.decay_ratio >= 1.0 / 2.2 &&
      (f.autocorr_24h > 0.1 || f.peak_day_mass < 0.38)) {
    return PatternType::kDiurnal;
  }
  // Long-lived fallback: early peak, multi-day tail, bounded span.
  if (f.time_to_peak_hours <= 36.0 && f.active_span_hours > 30.0 &&
      f.active_span_hours <= 144.0 && f.decay_hours >= 18.0) {
    return PatternType::kLongLived;
  }
  // Flat long-running series without detectable periodicity still look more
  // diurnal-ish than anything else when they span the whole week.
  if (f.active_span_hours >= 150.0 && f.peak_day_mass < 0.35 &&
      f.decay_ratio <= 2.2 && f.decay_ratio >= 1.0 / 2.2) {
    return PatternType::kDiurnal;
  }
  return PatternType::kOutlier;
}

std::string DescribeShape(const ShapeFeatures& f) {
  char buf[192];
  std::snprintf(
      buf, sizeof(buf),
      "span=%.0fh ttp=%.0fh decay=%.0fh ac24=%.2f day=%.2f 6h=%.2f dr=%.2f",
      f.active_span_hours, f.time_to_peak_hours, f.decay_hours, f.autocorr_24h,
      f.peak_day_mass, f.peak_6h_mass, f.decay_ratio);
  return buf;
}

}  // namespace atlas::cluster
