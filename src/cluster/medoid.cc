#include "cluster/medoid.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace atlas::cluster {

std::size_t MedoidIndex(const DistanceMatrix& distances,
                        const std::vector<std::size_t>& member_ids) {
  if (member_ids.empty()) {
    throw std::invalid_argument("MedoidIndex: empty cluster");
  }
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_i = 0;
  for (std::size_t i = 0; i < member_ids.size(); ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < member_ids.size(); ++j) {
      if (i != j) total += distances.Get(member_ids[i], member_ids[j]);
    }
    if (total < best) {
      best = total;
      best_i = i;
    }
  }
  return best_i;
}

std::vector<MedoidSummary> SummarizeClusters(
    const DistanceMatrix& distances,
    const std::vector<std::vector<double>>& series,
    const std::vector<std::size_t>& labels) {
  if (series.size() != labels.size() || series.size() != distances.size()) {
    throw std::invalid_argument("SummarizeClusters: size mismatch");
  }
  std::size_t k = 0;
  for (std::size_t l : labels) k = std::max(k, l + 1);

  std::vector<MedoidSummary> out;
  out.reserve(k);
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == c) members.push_back(i);
    }
    if (members.empty()) continue;

    MedoidSummary summary;
    summary.cluster_label = c;
    summary.member_count = members.size();
    summary.medoid_item = members[MedoidIndex(distances, members)];
    summary.medoid_series = series[summary.medoid_item];

    // Point-wise mean then stddev across cluster members.
    const std::size_t len = summary.medoid_series.size();
    std::vector<double> mean(len, 0.0);
    for (std::size_t m : members) {
      for (std::size_t t = 0; t < len; ++t) mean[t] += series[m][t];
    }
    for (double& v : mean) v /= static_cast<double>(members.size());
    summary.pointwise_stddev.assign(len, 0.0);
    for (std::size_t m : members) {
      for (std::size_t t = 0; t < len; ++t) {
        const double d = series[m][t] - mean[t];
        summary.pointwise_stddev[t] += d * d;
      }
    }
    for (double& v : summary.pointwise_stddev) {
      v = std::sqrt(v / static_cast<double>(members.size()));
    }
    out.push_back(std::move(summary));
  }
  return out;
}

std::string Sparkline(const std::vector<double>& series, std::size_t width) {
  if (series.empty() || width == 0) return "";
  static const char* const kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  constexpr std::size_t kNumLevels = 8;
  const double peak = *std::max_element(series.begin(), series.end());
  std::string out;
  out.reserve(width);
  for (std::size_t x = 0; x < width; ++x) {
    // Average the bucket of samples mapping to this column.
    const std::size_t lo = x * series.size() / width;
    const std::size_t hi =
        std::max(lo + 1, (x + 1) * series.size() / width);
    double v = 0.0;
    for (std::size_t i = lo; i < hi && i < series.size(); ++i) v += series[i];
    v /= static_cast<double>(hi - lo);
    if (peak <= 0.0) {
      out += kLevels[0];
    } else {
      auto level = static_cast<std::size_t>(v / peak * (kNumLevels - 1) + 0.5);
      out += kLevels[std::min(level, kNumLevels - 1)];
    }
  }
  return out;
}

}  // namespace atlas::cluster
