// Temporal-shape classification.
//
// The paper names its clusters by eye: diurnal, long-lived, short-lived,
// flash-crowd, outliers. ShapeClassifier does the same mechanically from an
// hourly request-count series, so the clustering pipeline can attach the
// paper's labels to the clusters it finds (and so closed-loop tests can
// check the generator's planted pattern is recovered).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "synth/site_profile.h"  // PatternType

namespace atlas::cluster {

struct ShapeFeatures {
  double total = 0.0;
  // Fraction of weekly hours with activity above 5% of the series peak.
  double active_fraction = 0.0;
  // Hours between first and last active hour (observable lifetime).
  double active_span_hours = 0.0;
  // Hours from series start to the first active hour (dormant lead-in).
  double first_active_hour = 0.0;
  // Hours from first activity to the series peak.
  double time_to_peak_hours = 0.0;
  // Hours from the peak until activity dies (below 5% of peak for good).
  double decay_hours = 0.0;
  // Autocorrelation at lag 24h over the active window (diurnality).
  double autocorr_24h = 0.0;
  // Fraction of total mass inside the best 24h window (burstiness).
  double peak_day_mass = 0.0;
  // Fraction of total mass inside the best 6h window.
  double peak_6h_mass = 0.0;
  // Mass in the first half of the active window over mass in the second
  // half; >> 1 for decaying (long-/short-lived) series, ~1 for diurnal.
  double decay_ratio = 1.0;
};

// Extracts features from an hourly series (one bucket per hour).
ShapeFeatures ExtractShapeFeatures(const std::vector<double>& hourly);

// Classifies a series into the paper's taxonomy. The decision rules are
// ordered: strong 6h concentration after a dormant lead-in => flash-crowd;
// short observable life => short-lived; periodic + long-lived => diurnal;
// early peak with multi-day decay => long-lived; anything else => outlier.
synth::PatternType ClassifyShape(const std::vector<double>& hourly);

// Human-readable one-line summary (for reports/debugging).
std::string DescribeShape(const ShapeFeatures& f);

}  // namespace atlas::cluster
