// Agglomerative hierarchical clustering.
//
// §IV-B: "We then use the pairwise DTW distance matrix to obtain
// hierarchical clusters for the request count time series. We use
// agglomerative hierarchical clustering to obtain dendrogram[s]".
//
// Standard bottom-up agglomeration with Lance-Williams distance updates;
// single, complete, and average linkage are supported (the paper does not
// name its linkage; average is the default and what Fig. 8 is regenerated
// with).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/dtw.h"

namespace atlas::cluster {

enum class Linkage : std::uint8_t { kSingle = 0, kComplete = 1, kAverage = 2 };
const char* ToString(Linkage linkage);

// One agglomeration step. Nodes 0..n-1 are leaves; merge k creates node
// n + k.
struct Merge {
  std::size_t left = 0;
  std::size_t right = 0;
  double height = 0.0;  // linkage distance at which the merge happened
  std::size_t size = 0; // leaves under the new node
};

class Dendrogram {
 public:
  Dendrogram(std::size_t leaves, std::vector<Merge> merges);

  std::size_t leaf_count() const { return leaves_; }
  const std::vector<Merge>& merges() const { return merges_; }

  // Flat clustering with exactly k clusters (1 <= k <= leaves): undo the
  // last k-1 merges. Returns a label in [0, k) per leaf; labels are ordered
  // by decreasing cluster size (label 0 = largest cluster).
  std::vector<std::size_t> CutAtK(std::size_t k) const;

  // Flat clustering keeping only merges with height <= threshold.
  std::vector<std::size_t> CutAtHeight(double threshold) const;

  // Cluster sizes for a labeling.
  static std::vector<std::size_t> ClusterSizes(
      const std::vector<std::size_t>& labels);

  // Text rendering in the spirit of Fig. 8's x-axis: one line per cluster
  // with its share of leaves, plus the merge heights. `names` (optional)
  // labels each cluster.
  std::string RenderClusterShares(const std::vector<std::size_t>& labels,
                                  const std::vector<std::string>& names) const;

 private:
  std::size_t leaves_;
  std::vector<Merge> merges_;
};

// Runs agglomerative clustering over a precomputed distance matrix.
Dendrogram AgglomerativeCluster(const DistanceMatrix& distances,
                                Linkage linkage = Linkage::kAverage);

// Mean silhouette coefficient of a flat clustering (quality diagnostic for
// choosing k). Singleton clusters contribute 0.
double SilhouetteScore(const DistanceMatrix& distances,
                       const std::vector<std::size_t>& labels);

}  // namespace atlas::cluster
