// Spec-driven scenario runs with energy accounting attached.
//
// StreamScenarioWithEnergy is cdn::StreamScenario(spec, ...) plus an
// EnergyAccumulator riding the run: the accumulator observes every epoch
// barrier, its counters join the run's checkpoints ("energy.accumulator"
// section, committed atomically with the engine and trace state), and the
// final EnergyReport is derived when the run completes. The record stream
// is byte-identical to the plain spec run — the observer hook cannot shape
// a record, and the spec fingerprint the checkpoint pins is unchanged.
#pragma once

#include "cdn/scenario_spec.h"
#include "energy/accumulator.h"

namespace atlas::energy {

struct EnergyRunResult {
  cdn::ScenarioStreamResult sim;
  EnergyAccumulator accumulator;
  EnergyReport report;
};

EnergyRunResult StreamScenarioWithEnergy(const cdn::ScenarioSpec& spec,
                                         trace::RecordSink& sink,
                                         int threads = 0);

// Checkpointed variant. Resuming requires the checkpoint to carry the
// "energy.accumulator" section — a snapshot written by a plain (energy-off)
// run cannot resume an energy run, because the joules already attributed
// before the kill would be lost silently.
EnergyRunResult StreamScenarioWithEnergy(
    const cdn::ScenarioSpec& spec, trace::RecordSink& sink, int threads,
    const cdn::CheckpointOptions& ckpt_options);

// Low-level wiring for callers that assemble their own runs (e.g. the CLI's
// non-spec path): attaches the accumulator's observer to `config`, chains
// the "energy.accumulator" section into the returned checkpoint options,
// and — when `base.resume` is set — restores the accumulator from the
// snapshot (throwing if the section is missing). The accumulator must
// outlive the run.
cdn::CheckpointOptions AttachEnergy(EnergyAccumulator& acc,
                                    cdn::SimulatorConfig& config,
                                    const cdn::CheckpointOptions& base);

}  // namespace atlas::energy
