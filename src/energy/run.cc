#include "energy/run.h"

#include <stdexcept>
#include <utility>

#include "ckpt/checkpoint.h"  // atlas-lint: allow(layer-dag) ckpt is the passive serialization substrate; consuming its codec interface does not invert control flow

namespace atlas::energy {
namespace {

// Checkpoint section carrying the accumulator's counters.
constexpr char kEnergySection[] = "energy.accumulator";
constexpr std::uint32_t kEnergySectionVersion = 1;

}  // namespace

EnergyRunResult StreamScenarioWithEnergy(const cdn::ScenarioSpec& spec,
                                         trace::RecordSink& sink,
                                         int threads) {
  return StreamScenarioWithEnergy(spec, sink, threads,
                                  cdn::CheckpointOptions{});
}

cdn::CheckpointOptions AttachEnergy(EnergyAccumulator& acc,
                                    cdn::SimulatorConfig& config,
                                    const cdn::CheckpointOptions& base) {
  config.epoch_observer = acc.Observer();
  cdn::CheckpointOptions opts = base;
  // The observer fires before the engine cuts a snapshot, so the counters
  // serialized here cover exactly the barriers the checkpoint covers.
  opts.save_extra = [&acc, saved = base.save_extra](ckpt::Writer& w) {
    w.BeginSection(kEnergySection, kEnergySectionVersion);
    acc.SaveState(w);
    w.EndSection();
    if (saved) saved(w);
  };
  if (base.resume != nullptr) {
    ckpt::Reader& r = *base.resume;
    if (!r.HasSection(kEnergySection)) {
      throw std::runtime_error(
          "ckpt: checkpoint carries no energy.accumulator section (it was "
          "written by an energy-off run); resuming it with energy "
          "accounting would silently drop the joules already attributed");
    }
    r.BeginSection(kEnergySection, kEnergySectionVersion);
    acc.RestoreState(r);
    r.EndSection();
  }
  return opts;
}

EnergyRunResult StreamScenarioWithEnergy(
    const cdn::ScenarioSpec& spec, trace::RecordSink& sink, int threads,
    const cdn::CheckpointOptions& ckpt_options) {
  EnergyRunResult out;
  cdn::SimulatorConfig config = spec.BuildConfig();
  const cdn::CheckpointOptions opts =
      AttachEnergy(out.accumulator, config, ckpt_options);
  out.sim = cdn::StreamScenario(spec, config, sink, threads, opts);
  out.report = out.accumulator.Report(EnergyModel(spec.energy));
  return out;
}

}  // namespace atlas::energy
