// atlas::energy — per-DC energy & dollar-cost accounting for the CDN.
//
// The paper's §V implications (push diurnally-popular objects, partition
// caches by size, schedule revalidations) are argued through hit ratios;
// this subsystem turns them into physical quantities. Every byte the
// delivery simulation moves is attributed to a path tier — edge hit,
// peer fill, origin fetch, or push — and each tier carries a network
// energy price (J/GB) and a transit price (USD/GB). On top of that sit
// per-DC server power (an idle floor plus a busy delta scaled by egress
// duty cycle) and storage power for cache-resident bytes.
//
// The accounting is observation-only by construction: it consumes the
// engine's existing 64-bit delivery counters through the epoch-observer
// hook and never touches a record, so every pinned golden trace digest
// survives with or without it. All accumulation is integer; joules and
// dollars are derived once, at Report() time, in a fixed iteration order —
// which is what makes merged-shard and killed+resumed runs bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "cdn/scenario_spec.h"
#include "cdn/simulator.h"

namespace atlas::energy {

// Cumulative delivery counters for one DC, all 64-bit and associatively
// mergeable (the same design contract as cdn::SimulatorResult).
struct DcCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t hit_bytes = 0;
  std::uint64_t miss_bytes = 0;
  std::uint64_t origin_fetches = 0;
  std::uint64_t origin_bytes = 0;
  std::uint64_t peer_fetches = 0;
  std::uint64_t peer_bytes = 0;
  std::uint64_t pushed_bytes = 0;
  std::uint64_t revalidations = 0;
  // Time integral of edge-cache occupancy, in KiB·ms: occupancy is sampled
  // at each epoch barrier and held for the epoch. KiB granularity keeps a
  // week of a multi-GB cache far from u64 overflow.
  std::uint64_t resident_kib_ms = 0;

  // Bytes egressed to users from this DC (hits plus miss-through traffic).
  std::uint64_t served_bytes() const { return hit_bytes + miss_bytes; }

  void Merge(const DcCounters& other);
  bool operator==(const DcCounters&) const = default;
};

// Joules and dollars for one accounting scope (one DC, or the fleet).
struct EnergyBreakdown {
  double server_j = 0.0;
  double network_j = 0.0;
  double storage_j = 0.0;
  double electricity_usd = 0.0;
  double transit_usd = 0.0;

  double TotalJoules() const { return server_j + network_j + storage_j; }
  double TotalKwh() const { return TotalJoules() / 3.6e6; }
  double TotalUsd() const { return electricity_usd + transit_usd; }

  void Add(const EnergyBreakdown& other);
};

struct DcEnergy {
  int dc = 0;
  std::uint64_t served_bytes = 0;
  // Fraction of the DC's egress capacity used over the observed span.
  double duty = 0.0;
  EnergyBreakdown energy;
};

struct EnergyReport {
  std::int64_t span_ms = 0;   // total observed wall span (epochs * epoch_ms)
  std::uint64_t epochs = 0;
  std::vector<DcEnergy> dcs;  // DC index order
  EnergyBreakdown total;      // sum over dcs, folded in index order
};

// Pure joule/dollar math over counter blocks; holds the spec by value.
class EnergyModel {
 public:
  EnergyModel() = default;
  explicit EnergyModel(const cdn::EnergySpec& spec) : spec_(spec) {}

  const cdn::EnergySpec& spec() const { return spec_; }

  // Egress duty cycle of one DC over `span_ms` of wall time, in [0, 1].
  double DutyCycle(std::uint64_t served_bytes, std::int64_t span_ms) const;

  // Full breakdown for one DC's counters over `span_ms` of wall time.
  EnergyBreakdown Cost(const DcCounters& c, std::int64_t span_ms) const;

  // Whole-run summary straight from a SimulatorResult (the ablation path:
  // no epoch attribution ran). Per-DC entries carry server power and duty
  // from the per-DC byte split; network/transit tiers use the run-wide
  // counters and land in `total` only. Storage is zero here — occupancy
  // over time needs the epoch observer.
  EnergyReport FromResult(const cdn::SimulatorResult& result,
                          std::int64_t span_ms) const;

 private:
  cdn::EnergySpec spec_;
};

}  // namespace atlas::energy
