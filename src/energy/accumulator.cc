#include "energy/accumulator.h"

#include "ckpt/checkpoint.h"  // atlas-lint: allow(layer-dag) ckpt is the passive serialization substrate; consuming its codec interface does not invert control flow

namespace atlas::energy {
namespace {

constexpr std::uint32_t kEnergyAccumulatorStateVersion = 1;

}  // namespace

void EnergyAccumulator::Observe(const cdn::EpochSample& sample) {
  const std::int64_t window_ms = sample.end_ms - sample.start_ms;
  span_ms_ += window_ms;
  ++epochs_;
  if (dcs_.size() < sample.dcs.size()) dcs_.resize(sample.dcs.size());
  for (std::size_t d = 0; d < sample.dcs.size(); ++d) {
    const cdn::EpochDcSample& in = sample.dcs[d];
    DcCounters& c = dcs_[d];
    c.hits += in.edge.hits;
    c.misses += in.edge.misses;
    c.hit_bytes += in.edge.hit_bytes;
    c.miss_bytes += in.edge.miss_bytes;
    c.origin_fetches += in.origin.fetches;
    c.origin_bytes += in.origin.bytes;
    c.peer_fetches += in.peer_fetches;
    c.peer_bytes += in.peer_bytes;
    c.pushed_bytes += in.pushed_bytes;
    c.revalidations += in.revalidations;
    // Occupancy sampled at the barrier, held for the window. KiB
    // truncation is deterministic: every schedule sees the same bytes.
    c.resident_kib_ms += (in.resident_bytes >> 10) *
                         static_cast<std::uint64_t>(window_ms);
  }
}

void EnergyAccumulator::Merge(const EnergyAccumulator& other) {
  span_ms_ += other.span_ms_;
  epochs_ += other.epochs_;
  if (dcs_.size() < other.dcs_.size()) dcs_.resize(other.dcs_.size());
  for (std::size_t d = 0; d < other.dcs_.size(); ++d) {
    dcs_[d].Merge(other.dcs_[d]);
  }
}

void EnergyAccumulator::SaveState(ckpt::Writer& w) const {
  w.WriteVersion(kEnergyAccumulatorStateVersion);
  w.WriteI64(span_ms_);
  w.WriteU64(epochs_);
  w.WriteU64(static_cast<std::uint64_t>(dcs_.size()));
  for (const DcCounters& c : dcs_) {
    w.WriteU64(c.hits);
    w.WriteU64(c.misses);
    w.WriteU64(c.hit_bytes);
    w.WriteU64(c.miss_bytes);
    w.WriteU64(c.origin_fetches);
    w.WriteU64(c.origin_bytes);
    w.WriteU64(c.peer_fetches);
    w.WriteU64(c.peer_bytes);
    w.WriteU64(c.pushed_bytes);
    w.WriteU64(c.revalidations);
    w.WriteU64(c.resident_kib_ms);
  }
}

void EnergyAccumulator::RestoreState(ckpt::Reader& r) {
  r.ExpectVersion("energy accumulator", kEnergyAccumulatorStateVersion);
  span_ms_ = r.ReadI64();
  epochs_ = r.ReadU64();
  dcs_.clear();
  const std::uint64_t ndc = r.ReadU64();
  dcs_.reserve(static_cast<std::size_t>(ndc));
  for (std::uint64_t i = 0; i < ndc; ++i) {
    DcCounters c;
    c.hits = r.ReadU64();
    c.misses = r.ReadU64();
    c.hit_bytes = r.ReadU64();
    c.miss_bytes = r.ReadU64();
    c.origin_fetches = r.ReadU64();
    c.origin_bytes = r.ReadU64();
    c.peer_fetches = r.ReadU64();
    c.peer_bytes = r.ReadU64();
    c.pushed_bytes = r.ReadU64();
    c.revalidations = r.ReadU64();
    c.resident_kib_ms = r.ReadU64();
    dcs_.push_back(c);
  }
}

EnergyReport EnergyAccumulator::Report(const EnergyModel& model) const {
  EnergyReport report;
  report.span_ms = span_ms_;
  report.epochs = epochs_;
  report.dcs.reserve(dcs_.size());
  for (std::size_t d = 0; d < dcs_.size(); ++d) {
    DcEnergy dc;
    dc.dc = static_cast<int>(d);
    dc.served_bytes = dcs_[d].served_bytes();
    dc.duty = model.DutyCycle(dc.served_bytes, span_ms_);
    dc.energy = model.Cost(dcs_[d], span_ms_);
    report.total.Add(dc.energy);
    report.dcs.push_back(dc);
  }
  return report;
}

}  // namespace atlas::energy
