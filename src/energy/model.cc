#include "energy/model.h"

#include <algorithm>

namespace atlas::energy {
namespace {

constexpr double kBytesPerGb = 1e9;
constexpr double kJoulesPerKwh = 3.6e6;

}  // namespace

void DcCounters::Merge(const DcCounters& other) {
  hits += other.hits;
  misses += other.misses;
  hit_bytes += other.hit_bytes;
  miss_bytes += other.miss_bytes;
  origin_fetches += other.origin_fetches;
  origin_bytes += other.origin_bytes;
  peer_fetches += other.peer_fetches;
  peer_bytes += other.peer_bytes;
  pushed_bytes += other.pushed_bytes;
  revalidations += other.revalidations;
  resident_kib_ms += other.resident_kib_ms;
}

void EnergyBreakdown::Add(const EnergyBreakdown& other) {
  server_j += other.server_j;
  network_j += other.network_j;
  storage_j += other.storage_j;
  electricity_usd += other.electricity_usd;
  transit_usd += other.transit_usd;
}

double EnergyModel::DutyCycle(std::uint64_t served_bytes,
                              std::int64_t span_ms) const {
  if (span_ms <= 0) return 0.0;
  const double span_s = static_cast<double>(span_ms) / 1000.0;
  const double capacity_bytes_per_s = spec_.server_capacity_gbps * 1e9 / 8.0;
  return std::min(1.0, static_cast<double>(served_bytes) /
                           (capacity_bytes_per_s * span_s));
}

EnergyBreakdown EnergyModel::Cost(const DcCounters& c,
                                  std::int64_t span_ms) const {
  EnergyBreakdown b;
  const double span_s = span_ms > 0 ? static_cast<double>(span_ms) / 1000.0
                                    : 0.0;
  const double duty = DutyCycle(c.served_bytes(), span_ms);
  b.server_j = spec_.server_idle_watts * span_s +
               (spec_.server_busy_watts - spec_.server_idle_watts) * duty *
                   span_s;
  b.network_j =
      (static_cast<double>(c.hit_bytes) * spec_.edge_hit_j_per_gb +
       static_cast<double>(c.peer_bytes) * spec_.peer_fill_j_per_gb +
       static_cast<double>(c.origin_bytes) * spec_.origin_fetch_j_per_gb +
       static_cast<double>(c.pushed_bytes) * spec_.push_j_per_gb) /
      kBytesPerGb;
  // resident_kib_ms -> GiB·s: /1024/1024 (KiB->GiB), /1000 (ms->s).
  b.storage_j = spec_.storage_watts_per_gb *
                (static_cast<double>(c.resident_kib_ms) /
                 (1024.0 * 1024.0 * 1000.0));
  b.electricity_usd = (b.server_j + b.network_j + b.storage_j) /
                      kJoulesPerKwh * spec_.electricity_usd_per_kwh;
  b.transit_usd =
      (static_cast<double>(c.hit_bytes) * spec_.edge_hit_usd_per_gb +
       static_cast<double>(c.peer_bytes) * spec_.peer_fill_usd_per_gb +
       static_cast<double>(c.origin_bytes) * spec_.origin_fetch_usd_per_gb +
       static_cast<double>(c.pushed_bytes) * spec_.push_usd_per_gb) /
      kBytesPerGb;
  return b;
}

EnergyReport EnergyModel::FromResult(const cdn::SimulatorResult& result,
                                     std::int64_t span_ms) const {
  EnergyReport report;
  report.span_ms = span_ms;
  report.dcs.reserve(result.per_dc_stats.size());
  for (std::size_t d = 0; d < result.per_dc_stats.size(); ++d) {
    const cdn::CacheStats& s = result.per_dc_stats[d];
    DcCounters c;
    c.hits = s.hits;
    c.misses = s.misses;
    c.hit_bytes = s.hit_bytes;
    c.miss_bytes = s.miss_bytes;
    DcEnergy dc;
    dc.dc = static_cast<int>(d);
    dc.served_bytes = c.served_bytes();
    dc.duty = DutyCycle(dc.served_bytes, span_ms);
    // Server power only: the run-wide counters below cannot be split by DC.
    dc.energy.server_j = Cost(c, span_ms).server_j;
    dc.energy.electricity_usd = dc.energy.server_j / kJoulesPerKwh *
                                spec_.electricity_usd_per_kwh;
    report.total.Add(dc.energy);
    report.dcs.push_back(dc);
  }
  DcCounters tiers;
  tiers.hit_bytes = result.edge_stats.hit_bytes;
  tiers.peer_bytes = result.peer_bytes;
  tiers.origin_bytes = result.origin.bytes;
  tiers.pushed_bytes = result.pushed_bytes;
  EnergyBreakdown net;
  // Cost() with span 0 yields the pure per-byte terms (no server floor);
  // miss_bytes stays zero above so hit_bytes alone prices the egress tier.
  const EnergyBreakdown tier_cost = Cost(tiers, 0);
  net.network_j = tier_cost.network_j;
  net.electricity_usd = tier_cost.network_j / kJoulesPerKwh *
                        spec_.electricity_usd_per_kwh;
  net.transit_usd = tier_cost.transit_usd;
  report.total.Add(net);
  return report;
}

}  // namespace atlas::energy
