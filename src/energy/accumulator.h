// EnergyAccumulator: the engine-facing half of atlas::energy.
//
// An accumulator attaches to a run through the SimulatorConfig
// epoch-observer hook and folds each barrier's per-DC counter deltas into
// cumulative 64-bit counters. It is:
//
//   mergeable      — Merge() is associative with the default-constructed
//                    accumulator as identity, like SimulatorResult;
//   checkpointable — SaveState/RestoreState round-trip every counter, so
//                    a killed run resumed from its checkpoint reports the
//                    same joules to the bit;
//   passive        — it observes deltas the engine already tracks and can
//                    never influence a record.
//
// Joules/dollars are only ever derived at Report() time from the integer
// counters, in DC index order, so any execution schedule that produces the
// same counters produces bit-identical doubles.
#pragma once

#include <cstdint>
#include <vector>

#include "energy/model.h"

namespace atlas::ckpt {
class Writer;
class Reader;
}  // namespace atlas::ckpt

namespace atlas::energy {

class EnergyAccumulator {
 public:
  // Folds one barrier's samples in (the engine fires these serially).
  void Observe(const cdn::EpochSample& sample);

  // Adapter for SimulatorConfig::epoch_observer. The accumulator must
  // outlive the run the observer is attached to.
  cdn::EpochObserver Observer() {
    return [this](const cdn::EpochSample& s) { Observe(s); };
  }

  // Folds `other` in (counters add, per-DC slots merge index-wise).
  void Merge(const EnergyAccumulator& other);

  // Versioned counter round-trip (section management is the caller's).
  void SaveState(ckpt::Writer& w) const;
  void RestoreState(ckpt::Reader& r);

  // Derives joules/dollars from the counters under `model`'s parameters.
  EnergyReport Report(const EnergyModel& model) const;

  std::int64_t span_ms() const { return span_ms_; }
  std::uint64_t epochs() const { return epochs_; }
  const std::vector<DcCounters>& dcs() const { return dcs_; }

  bool operator==(const EnergyAccumulator&) const = default;

 private:
  std::int64_t span_ms_ = 0;   // sum of observed epoch windows
  std::uint64_t epochs_ = 0;   // barriers observed
  std::vector<DcCounters> dcs_;
};

}  // namespace atlas::energy
