#include "cluster/dtw.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace atlas::cluster {
namespace {

TEST(DtwDistanceTest, IdenticalSeriesIsZero) {
  const std::vector<double> a = {1, 2, 3, 2, 1};
  EXPECT_DOUBLE_EQ(DtwDistance(a, a), 0.0);
}

TEST(DtwDistanceTest, KnownSmallExample) {
  // a={0,1}, b={1}: path (0,0),(1,0): cost |0-1| + |1-1| = 1.
  EXPECT_DOUBLE_EQ(DtwDistance({0, 1}, {1}), 1.0);
}

TEST(DtwDistanceTest, ConstantShiftCosts) {
  const std::vector<double> a = {0, 0, 0, 0};
  const std::vector<double> b = {1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), 4.0);
}

TEST(DtwDistanceTest, WarpsThroughTimeShift) {
  // The same bump at different positions: DTW should be much smaller than
  // the pointwise L1 distance.
  std::vector<double> a(40, 0.0), b(40, 0.0);
  for (int i = 0; i < 5; ++i) {
    a[static_cast<std::size_t>(5 + i)] = 1.0;
    b[static_cast<std::size_t>(25 + i)] = 1.0;
  }
  double l1 = 0;
  for (std::size_t i = 0; i < a.size(); ++i) l1 += std::abs(a[i] - b[i]);
  EXPECT_LT(DtwDistance(a, b), l1 / 2.0);
}

TEST(DtwDistanceTest, BandRestrictsWarping) {
  std::vector<double> a(40, 0.0), b(40, 0.0);
  for (int i = 0; i < 5; ++i) {
    a[static_cast<std::size_t>(5 + i)] = 1.0;
    b[static_cast<std::size_t>(25 + i)] = 1.0;
  }
  // A tight band cannot align bumps 20 steps apart.
  EXPECT_GT(DtwDistance(a, b, 3), DtwDistance(a, b, 0));
}

TEST(DtwDistanceTest, SymmetricInArguments) {
  util::Rng rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(rng.NextDouble());
    b.push_back(rng.NextDouble());
  }
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), DtwDistance(b, a));
  EXPECT_DOUBLE_EQ(DtwDistance(a, b, 5), DtwDistance(b, a, 5));
}

TEST(DtwDistanceTest, NonNegative) {
  util::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> a, b;
    for (int i = 0; i < 20; ++i) {
      a.push_back(rng.NextGaussian());
      b.push_back(rng.NextGaussian());
    }
    EXPECT_GE(DtwDistance(a, b), 0.0);
  }
}

TEST(DtwDistanceTest, UnequalLengths) {
  EXPECT_NO_THROW(DtwDistance({1, 2, 3, 4, 5}, {1, 5}));
  // Band narrower than the length difference is widened internally.
  EXPECT_NO_THROW(DtwDistance({1, 2, 3, 4, 5, 6, 7, 8}, {1, 2}, 1));
}

TEST(DtwDistanceTest, EmptyThrows) {
  EXPECT_THROW(DtwDistance({}, {1.0}), std::invalid_argument);
  EXPECT_THROW(DtwDistance({1.0}, {}), std::invalid_argument);
}

TEST(DtwPathTest, StartsAndEndsAtCorners) {
  const auto path = DtwPath({1, 2, 3}, {1, 3});
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_EQ(path.back(), (std::pair<std::size_t, std::size_t>{2, 1}));
}

TEST(DtwPathTest, MonotoneSteps) {
  util::Rng rng(11);
  std::vector<double> a, b;
  for (int i = 0; i < 25; ++i) a.push_back(rng.NextDouble());
  for (int i = 0; i < 18; ++i) b.push_back(rng.NextDouble());
  const auto path = DtwPath(a, b);
  for (std::size_t i = 1; i < path.size(); ++i) {
    const auto di = path[i].first - path[i - 1].first;
    const auto dj = path[i].second - path[i - 1].second;
    EXPECT_LE(di, 1u);
    EXPECT_LE(dj, 1u);
    EXPECT_TRUE(di == 1 || dj == 1);
  }
}

TEST(DtwPathTest, PathCostEqualsDistance) {
  util::Rng rng(13);
  std::vector<double> a, b;
  for (int i = 0; i < 20; ++i) {
    a.push_back(rng.NextDouble());
    b.push_back(rng.NextDouble());
  }
  const auto path = DtwPath(a, b);
  double cost = 0;
  for (const auto& [i, j] : path) cost += std::abs(a[i] - b[j]);
  EXPECT_NEAR(cost, DtwDistance(a, b), 1e-9);
}

TEST(DistanceMatrixTest, SymmetricStorage) {
  DistanceMatrix m(4);
  m.Set(1, 3, 2.5);
  EXPECT_DOUBLE_EQ(m.Get(1, 3), 2.5);
  EXPECT_DOUBLE_EQ(m.Get(3, 1), 2.5);
  EXPECT_DOUBLE_EQ(m.Get(2, 2), 0.0);
}

TEST(DistanceMatrixTest, BoundsChecked) {
  DistanceMatrix m(3);
  EXPECT_THROW(m.Get(0, 3), std::out_of_range);
  EXPECT_THROW(m.Set(3, 0, 1.0), std::out_of_range);
  EXPECT_THROW(DistanceMatrix(1), std::invalid_argument);
}

TEST(PairwiseDtwTest, AllPairsFilled) {
  const std::vector<std::vector<double>> series = {
      {1, 2, 3}, {1, 2, 3}, {5, 5, 5}};
  const auto m = PairwiseDtw(series);
  EXPECT_DOUBLE_EQ(m.Get(0, 1), 0.0);
  EXPECT_GT(m.Get(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(m.Get(1, 2), m.Get(2, 1));
}

}  // namespace
}  // namespace atlas::cluster
