#include "cluster/shape.h"

#include <gtest/gtest.h>

#include <cmath>

#include "synth/temporal.h"
#include "util/rng.h"
#include "util/time.h"

namespace atlas::cluster {
namespace {

using synth::PatternType;

// Clean synthetic hourly series for each archetype.
std::vector<double> DiurnalSeries(double amplitude = 0.6) {
  std::vector<double> v(168);
  for (int h = 0; h < 168; ++h) {
    v[static_cast<std::size_t>(h)] =
        10.0 * (1.0 + amplitude * std::cos(2.0 * M_PI * (h % 24) / 24.0));
  }
  return v;
}

std::vector<double> LongLivedSeries(double tau_hours = 30.0) {
  std::vector<double> v(168, 0.0);
  for (int h = 0; h < 168; ++h) {
    v[static_cast<std::size_t>(h)] =
        50.0 * std::exp(-h / tau_hours) *
        (1.0 + 0.4 * std::cos(2.0 * M_PI * (h % 24) / 24.0));
  }
  return v;
}

std::vector<double> ShortLivedSeries(double tau_hours = 3.0) {
  std::vector<double> v(168, 0.0);
  for (int h = 0; h < 24; ++h) {
    v[static_cast<std::size_t>(h)] = 100.0 * std::exp(-h / tau_hours);
  }
  return v;
}

std::vector<double> FlashSeries(int spike_at = 80) {
  std::vector<double> v(168, 0.05);
  for (int h = spike_at; h < spike_at + 8 && h < 168; ++h) {
    v[static_cast<std::size_t>(h)] =
        120.0 * std::exp(-(h - spike_at) / 3.0);
  }
  return v;
}

TEST(ExtractShapeFeaturesTest, EmptyAndZero) {
  EXPECT_EQ(ExtractShapeFeatures({}).total, 0.0);
  EXPECT_EQ(ExtractShapeFeatures({0, 0, 0}).total, 0.0);
}

TEST(ExtractShapeFeaturesTest, DiurnalFeatures) {
  const auto f = ExtractShapeFeatures(DiurnalSeries());
  EXPECT_GT(f.autocorr_24h, 0.5);
  EXPECT_GT(f.active_span_hours, 150.0);
  EXPECT_LT(f.peak_day_mass, 0.3);
  EXPECT_NEAR(f.decay_ratio, 1.0, 0.3);
}

TEST(ExtractShapeFeaturesTest, ShortLivedFeatures) {
  const auto f = ExtractShapeFeatures(ShortLivedSeries());
  EXPECT_LT(f.active_span_hours, 30.0);
  EXPECT_LE(f.time_to_peak_hours, 2.0);
  EXPECT_GT(f.peak_6h_mass, 0.8);
}

TEST(ExtractShapeFeaturesTest, DecayRatioDetectsDecay) {
  EXPECT_GT(ExtractShapeFeatures(LongLivedSeries()).decay_ratio, 2.5);
}

TEST(ClassifyShapeTest, CleanArchetypes) {
  EXPECT_EQ(ClassifyShape(DiurnalSeries()), PatternType::kDiurnal);
  EXPECT_EQ(ClassifyShape(LongLivedSeries()), PatternType::kLongLived);
  EXPECT_EQ(ClassifyShape(ShortLivedSeries()), PatternType::kShortLived);
  EXPECT_EQ(ClassifyShape(FlashSeries()), PatternType::kFlashCrowd);
}

TEST(ClassifyShapeTest, FlatWeekLongSeriesIsDiurnalish) {
  EXPECT_EQ(ClassifyShape(std::vector<double>(168, 5.0)),
            PatternType::kDiurnal);
}

TEST(ClassifyShapeTest, LateInjectedShortBurstIsNotDiurnal) {
  std::vector<double> v(168, 0.0);
  for (int h = 150; h < 156; ++h) v[static_cast<std::size_t>(h)] = 20.0;
  const auto shape = ClassifyShape(v);
  EXPECT_NE(shape, PatternType::kDiurnal);
  EXPECT_NE(shape, PatternType::kLongLived);
}

// Closed-loop: series produced by the *generator's* demand model (exact
// expected request intensity, before sampling noise) must classify as their
// own type.
class GeneratorShapeTest : public ::testing::TestWithParam<PatternType> {};

TEST_P(GeneratorShapeTest, ExpectedIntensityClassifiesCorrectly) {
  util::Rng rng(21);
  const auto profile = synth::SiteProfile::V2(0.01);
  int correct = 0;
  const int kTrials = 24;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto params = synth::PatternParams::Sample(GetParam(), profile, rng);
    std::vector<double> hourly(168);
    for (int h = 0; h < 168; ++h) {
      hourly[static_cast<std::size_t>(h)] = synth::ObjectDemandMultiplier(
          params, 0, h * util::kMillisPerHour + util::kMillisPerHour / 2, 0.0);
    }
    if (ClassifyShape(hourly) == GetParam()) ++correct;
  }
  // Noise-free intensities should classify correctly almost always.
  EXPECT_GE(correct, kTrials * 3 / 4) << synth::ToString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, GeneratorShapeTest,
    ::testing::Values(PatternType::kDiurnal, PatternType::kLongLived,
                      PatternType::kShortLived, PatternType::kFlashCrowd),
    [](const auto& info) {
      switch (info.param) {
        case PatternType::kDiurnal: return "Diurnal";
        case PatternType::kLongLived: return "LongLived";
        case PatternType::kShortLived: return "ShortLived";
        case PatternType::kFlashCrowd: return "FlashCrowd";
        default: return "Other";
      }
    });

TEST(DescribeShapeTest, MentionsFeatures) {
  const auto text = DescribeShape(ExtractShapeFeatures(DiurnalSeries()));
  EXPECT_NE(text.find("span="), std::string::npos);
  EXPECT_NE(text.find("ac24="), std::string::npos);
}

}  // namespace
}  // namespace atlas::cluster
