#include "analysis/aging.h"

#include <gtest/gtest.h>

#include "analysis_fixtures.h"
#include "cdn/simulator.h"
#include "util/time.h"

namespace atlas::analysis {
namespace {

using testing::MakeRecord;
using testing::RecordSpec;
using util::kMillisPerDay;

TEST(AgingTest, DayOneIsAlwaysRequested) {
  trace::TraceBuffer buf;
  buf.Add(MakeRecord({.t = 0, .url = 1}));
  buf.Add(MakeRecord({.t = 6 * kMillisPerDay, .url = 1}));
  const auto result = ComputeAging(buf, "X");
  // Every object is requested on its day 1 by construction of first-seen.
  EXPECT_DOUBLE_EQ(result.fraction_requested[0], 1.0);
}

TEST(AgingTest, DeclineTracksActivity) {
  trace::TraceBuffer buf;
  // Object 1: active days 1 and 2 only. Object 2: active all 7 days.
  buf.Add(MakeRecord({.t = 0, .url = 1}));
  buf.Add(MakeRecord({.t = kMillisPerDay + 5, .url = 1}));
  for (int d = 0; d < 7; ++d) {
    buf.Add(MakeRecord({.t = d * kMillisPerDay + 10, .url = 2}));
  }
  const auto result = ComputeAging(buf, "X");
  EXPECT_DOUBLE_EQ(result.fraction_requested[0], 1.0);
  EXPECT_DOUBLE_EQ(result.fraction_requested[1], 1.0);
  EXPECT_DOUBLE_EQ(result.fraction_requested[2], 0.5);
  EXPECT_DOUBLE_EQ(result.fraction_requested[6], 0.5);
  EXPECT_DOUBLE_EQ(result.requested_all_days, 0.5);
  EXPECT_DOUBLE_EQ(result.silent_after_3_days, 0.5);
}

TEST(AgingTest, LateObjectsHaveShortObservableWindows) {
  trace::TraceBuffer buf;
  // Trace spans 7 days via an early long-lived object.
  for (int d = 0; d < 7; ++d) {
    buf.Add(MakeRecord({.t = d * kMillisPerDay, .url = 1}));
  }
  // An object first seen on day 6 only has ~1-2 observable days; it must
  // not be counted in the day-5 denominator.
  buf.Add(MakeRecord({.t = 6 * kMillisPerDay, .url = 2}));
  const auto result = ComputeAging(buf, "X");
  EXPECT_EQ(result.observable_objects[6], 1u);  // only object 1
  EXPECT_EQ(result.observable_objects[0], 2u);
}

TEST(AgingTest, EmptyTraceSafe) {
  const auto result = ComputeAging(trace::TraceBuffer{}, "E");
  EXPECT_DOUBLE_EQ(result.fraction_requested[0], 0.0);
}

// Closed loop (Fig. 7): fraction requested declines with age; a sizeable
// share of objects goes silent after day 3.
TEST(AgingClosedLoopTest, DecliningShape) {
  cdn::SimulatorConfig config;
  const auto sim = cdn::SimulateSite(synth::SiteProfile::V2(0.02), 0, config, 7);
  const auto result = ComputeAging(sim.trace, "V-2");
  EXPECT_DOUBLE_EQ(result.fraction_requested[0], 1.0);
  EXPECT_LT(result.fraction_requested[6], 0.8);
  EXPECT_GT(result.silent_after_3_days, 0.1);
  EXPECT_LT(result.requested_all_days, 0.6);
  // Monotone-ish decline: day 7 below day 2.
  EXPECT_LT(result.fraction_requested[6], result.fraction_requested[1]);
}

}  // namespace
}  // namespace atlas::analysis
