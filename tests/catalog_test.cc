#include "synth/catalog.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/content_class.h"

namespace atlas::synth {
namespace {

Catalog MakeCatalog(const SiteProfile& profile, std::uint64_t seed = 1) {
  util::Rng rng(seed);
  return Catalog(profile, rng);
}

TEST(CatalogTest, SizeMatchesProfile) {
  const auto profile = SiteProfile::V2(0.02);
  const auto catalog = MakeCatalog(profile);
  EXPECT_EQ(catalog.size(), profile.num_objects);
}

TEST(CatalogTest, UrlHashesUnique) {
  const auto catalog = MakeCatalog(SiteProfile::P1(0.05));
  std::set<std::uint64_t> hashes;
  catalog.ForEachObject(
      [&](std::size_t, const ObjectMeta& obj) { hashes.insert(obj.url_hash); });
  EXPECT_EQ(hashes.size(), catalog.size());
}

TEST(CatalogTest, ClassMixMatchesProfile) {
  const auto profile = SiteProfile::V2(0.1);  // 5560 objects
  const auto catalog = MakeCatalog(profile);
  const auto counts = catalog.CountsByClass();
  const double n = static_cast<double>(catalog.size());
  EXPECT_NEAR(counts[0] / n, 0.15, 0.02);  // video
  EXPECT_NEAR(counts[1] / n, 0.84, 0.02);  // image
}

TEST(CatalogTest, FileTypesAgreeWithClasses) {
  const auto catalog = MakeCatalog(SiteProfile::V1(0.05));
  catalog.ForEachObject([](std::size_t, const ObjectMeta& obj) {
    EXPECT_EQ(trace::ClassOf(obj.file_type), obj.content_class);
  });
}

TEST(CatalogTest, PatternMixRoughlyMatches) {
  SiteProfile profile = SiteProfile::V2(0.1);
  const auto catalog = MakeCatalog(profile);
  // Count video-object patterns; compare against the profile's video mix.
  std::array<double, kNumPatternTypes> counts{};
  double video_total = 0;
  catalog.ForEachObject([&](std::size_t, const ObjectMeta& obj) {
    if (obj.content_class == trace::ContentClass::kVideo) {
      ++counts[static_cast<std::size_t>(obj.pattern.type)];
      ++video_total;
    }
  });
  ASSERT_GT(video_total, 100);
  for (int t = 0; t < kNumPatternTypes; ++t) {
    EXPECT_NEAR(counts[static_cast<std::size_t>(t)] / video_total,
                profile.video_patterns.fractions[static_cast<std::size_t>(t)],
                0.05)
        << ToString(static_cast<PatternType>(t));
  }
}

TEST(CatalogTest, InjectionSplitMatchesPreexistingFraction) {
  SiteProfile profile = SiteProfile::P2(0.1);
  profile.preexisting_fraction = 0.5;
  const auto catalog = MakeCatalog(profile);
  double preexisting = 0;
  catalog.ForEachObject([&](std::size_t, const ObjectMeta& obj) {
    if (obj.injected_at_ms <= 0) ++preexisting;
    EXPECT_LT(obj.injected_at_ms, util::kMillisPerWeek);
    EXPECT_GE(obj.injected_at_ms, -3 * util::kMillisPerDay);
  });
  EXPECT_NEAR(preexisting / static_cast<double>(catalog.size()), 0.5, 0.05);
}

TEST(CatalogTest, SizesWithinModelBounds) {
  const auto profile = SiteProfile::V1(0.05);
  const auto catalog = MakeCatalog(profile);
  catalog.ForEachObject([](std::size_t, const ObjectMeta& obj) {
    EXPECT_GT(obj.size_bytes, 0u);
    if (obj.content_class == trace::ContentClass::kImage) {
      EXPECT_LE(obj.size_bytes, 2e6);  // image model caps at 1.5 MB
    }
  });
}

TEST(CatalogTest, DiurnalVideosSmallerThanLongLived) {
  // Paper §IV-B: diurnal videos are smaller; long-lived are the largest.
  const auto catalog = MakeCatalog(SiteProfile::V1(0.3), 9);
  double diurnal_sum = 0, diurnal_n = 0, long_sum = 0, long_n = 0;
  catalog.ForEachObject([&](std::size_t, const ObjectMeta& obj) {
    if (obj.content_class != trace::ContentClass::kVideo) return;
    if (obj.pattern.type == PatternType::kDiurnal) {
      diurnal_sum += static_cast<double>(obj.size_bytes);
      ++diurnal_n;
    } else if (obj.pattern.type == PatternType::kLongLived) {
      long_sum += static_cast<double>(obj.size_bytes);
      ++long_n;
    }
  });
  ASSERT_GT(diurnal_n, 50);
  ASSERT_GT(long_n, 50);
  EXPECT_GT(long_sum / long_n, diurnal_sum / diurnal_n);
}

TEST(CatalogTest, SampleObjectRespectsInjectionTime) {
  // At hour 0, only objects already injected can be drawn.
  SiteProfile profile = SiteProfile::P2(0.02);
  profile.preexisting_fraction = 0.3;
  util::Rng rng(11);
  Catalog catalog(profile, rng);
  for (int i = 0; i < 2000; ++i) {
    const auto idx = catalog.SampleObject(util::kMillisPerMinute, rng);
    EXPECT_LE(catalog.object(idx).injected_at_ms, util::kMillisPerMinute);
  }
}

TEST(CatalogTest, SampleObjectFavorsPopularObjects) {
  const auto profile = SiteProfile::V1(0.02);
  util::Rng rng(13);
  Catalog catalog(profile, rng);
  std::map<std::size_t, int> counts;
  const std::int64_t t = 3 * util::kMillisPerDay;
  for (int i = 0; i < 30000; ++i) ++counts[catalog.SampleObject(t, rng)];
  // The most-sampled object should own a clearly super-uniform share.
  int max_count = 0;
  for (const auto& [idx, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 30000 / static_cast<int>(catalog.size()) * 5);
}

TEST(CatalogTest, DemandMassPositiveThroughoutWeek) {
  const auto catalog = MakeCatalog(SiteProfile::S1(0.02));
  for (int h = 0; h < util::kHoursPerWeek; h += 6) {
    EXPECT_GT(catalog.DemandMassAt(h * util::kMillisPerHour), 0.0);
  }
}

TEST(CatalogTest, DeterministicUnderSeed) {
  const auto profile = SiteProfile::V2(0.01);
  util::Rng rng1(7), rng2(7);
  Catalog a(profile, rng1), b(profile, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.object(i).url_hash, b.object(i).url_hash);
    EXPECT_EQ(a.object(i).size_bytes, b.object(i).size_bytes);
    EXPECT_EQ(a.object(i).pattern.type, b.object(i).pattern.type);
  }
}

}  // namespace
}  // namespace atlas::synth
