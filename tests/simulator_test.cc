#include "cdn/simulator.h"

#include <gtest/gtest.h>

#include <set>

#include "cdn/scenario.h"
#include "scenario_fixtures.h"
#include "trace/content_class.h"
#include "util/rng.h"

namespace atlas::cdn {
namespace {

SimulatorConfig SmallConfig() {
  SimulatorConfig config;
  config.topology.edge_capacity_bytes = 512ULL << 20;
  return config;
}

TEST(SimulatorTest, ProducesSortedTraceWithRecords) {
  const auto result = SimulateSite(synth::SiteProfile::P1(0.01), 2,
                                   SmallConfig(), 42);
  EXPECT_GT(result.trace.size(), 1000u);
  EXPECT_TRUE(result.trace.IsSortedByTime());
  for (const auto& r : result.trace.records()) {
    EXPECT_EQ(r.publisher_id, 2u);
  }
}

TEST(SimulatorTest, RecordCountNearTarget) {
  const auto profile = synth::SiteProfile::V1(0.01);
  const auto result = SimulateSite(profile, 0, SmallConfig(), 42);
  const double ratio = static_cast<double>(result.trace.size()) /
                       static_cast<double>(profile.total_requests);
  // Chunk-inflation calibration is approximate (watch-fraction clamping and
  // end-of-week truncation both shave records); allow a generous band.
  EXPECT_GT(ratio, 0.6);
  EXPECT_LT(ratio, 1.4);
}

TEST(SimulatorTest, VideoSiteEmitsPartialContent) {
  const auto result = SimulateSite(synth::SiteProfile::V1(0.01), 0,
                                   SmallConfig(), 7);
  std::uint64_t partial = 0, ok = 0;
  for (const auto& r : result.trace.records()) {
    if (r.response_code == trace::kHttpPartialContent) ++partial;
    if (r.response_code == trace::kHttpOk) ++ok;
  }
  // 206 dominates video traffic (paper Fig. 16a).
  EXPECT_GT(partial, ok * 10);
}

TEST(SimulatorTest, ImageSiteMostly200) {
  const auto result = SimulateSite(synth::SiteProfile::P1(0.01), 0,
                                   SmallConfig(), 7);
  std::uint64_t ok = 0;
  for (const auto& r : result.trace.records()) {
    if (r.response_code == trace::kHttpOk) ++ok;
  }
  EXPECT_GT(static_cast<double>(ok) / static_cast<double>(result.trace.size()),
            0.85);
}

TEST(SimulatorTest, AnomaliesProduceErrorCodes) {
  synth::SiteProfile profile = synth::SiteProfile::P1(0.01);
  profile.hotlink_rate = 0.05;
  profile.bad_range_rate = 0.05;
  profile.beacon_rate = 0.05;
  const auto result = SimulateSite(profile, 0, SmallConfig(), 9);
  std::set<std::uint16_t> codes;
  for (const auto& r : result.trace.records()) {
    codes.insert(r.response_code);
    if (r.response_code == trace::kHttpForbidden ||
        r.response_code == trace::kHttpRangeNotSatisfiable ||
        r.response_code == trace::kHttpNoContent) {
      EXPECT_EQ(r.response_bytes, 0u);
    }
  }
  EXPECT_TRUE(codes.count(trace::kHttpForbidden));
  EXPECT_TRUE(codes.count(trace::kHttpRangeNotSatisfiable));
  EXPECT_TRUE(codes.count(trace::kHttpNoContent));
}

TEST(SimulatorTest, RevalidationsProduce304) {
  // Non-incognito users with long sessions revalidate stale content.
  synth::SiteProfile profile = synth::SiteProfile::P1(0.01);
  profile.incognito_rate = 0.0;
  profile.repeat_request_prob = 0.4;
  profile.favorite_adopt_prob = 0.8;
  SimulatorConfig config = SmallConfig();
  config.browser_freshness_ms = 60 * 1000;  // stale after a minute
  const auto result = SimulateSite(profile, 0, config, 11);
  EXPECT_GT(result.revalidations, 0u);
  std::uint64_t not_modified = 0;
  for (const auto& r : result.trace.records()) {
    if (r.response_code == trace::kHttpNotModified) {
      ++not_modified;
      EXPECT_EQ(r.response_bytes, 0u);
    }
  }
  EXPECT_EQ(not_modified, result.revalidations);
}

TEST(SimulatorTest, IncognitoSuppressesBrowserCaching) {
  synth::SiteProfile base = synth::SiteProfile::P1(0.01);
  base.repeat_request_prob = 0.4;
  base.favorite_adopt_prob = 0.8;

  synth::SiteProfile incognito = base;
  incognito.incognito_rate = 1.0;
  synth::SiteProfile normal = base;
  normal.incognito_rate = 0.0;

  const auto r_incognito = SimulateSite(incognito, 0, SmallConfig(), 13);
  const auto r_normal = SimulateSite(normal, 0, SmallConfig(), 13);
  // §V: private browsing destroys browser-cache utility. Fresh hits and
  // 304s should both collapse relative to normal browsing.
  EXPECT_LT(r_incognito.browser_fresh_hits, r_normal.browser_fresh_hits);
  EXPECT_LE(r_incognito.revalidations, r_normal.revalidations);
}

TEST(SimulatorTest, EdgeStatsConsistentWithTrace) {
  const auto result = SimulateSite(synth::SiteProfile::P2(0.01), 0,
                                   SmallConfig(), 15);
  std::uint64_t hits = 0, misses = 0;
  for (const auto& r : result.trace.records()) {
    if (r.response_code == trace::kHttpOk ||
        r.response_code == trace::kHttpPartialContent ||
        r.response_code == trace::kHttpNotModified) {
      (r.cache_status == trace::CacheStatus::kHit ? hits : misses) += 1;
    }
  }
  EXPECT_EQ(hits, result.edge_stats.hits);
  EXPECT_EQ(misses, result.edge_stats.misses);
  // Every miss is an origin fetch.
  EXPECT_EQ(result.origin.fetches, result.edge_stats.misses);
}

TEST(SimulatorTest, PerDcStatsSumToTotal) {
  const auto result = SimulateSite(synth::SiteProfile::S1(0.01), 0,
                                   SmallConfig(), 17);
  CacheStats sum;
  for (const auto& s : result.per_dc_stats) sum.Merge(s);
  EXPECT_EQ(sum.hits, result.edge_stats.hits);
  EXPECT_EQ(sum.misses, result.edge_stats.misses);
}

TEST(SimulatorTest, PushImprovesHitRatioAndCutsOriginTraffic) {
  const auto profile = synth::SiteProfile::P2(0.02);
  SimulatorConfig off = SmallConfig();
  SimulatorConfig on = SmallConfig();
  on.push.enabled = true;
  on.push.top_n = 300;
  const auto r_off = SimulateSite(profile, 0, off, 19);
  const auto r_on = SimulateSite(profile, 0, on, 19);
  EXPECT_GT(r_on.pushed_objects, 0u);
  EXPECT_GE(r_on.edge_stats.HitRatio(), r_off.edge_stats.HitRatio());
  EXPECT_LE(r_on.origin.bytes, r_off.origin.bytes);
}

TEST(SimulatorTest, PeerFillDivertsOriginTraffic) {
  const auto profile = synth::SiteProfile::P1(0.02);
  SimulatorConfig off = SmallConfig();
  SimulatorConfig on = SmallConfig();
  on.peer_fill = true;
  const auto r_off = SimulateSite(profile, 0, off, 21);
  const auto r_on = SimulateSite(profile, 0, on, 21);
  EXPECT_EQ(r_off.peer_fetches, 0u);
  EXPECT_GT(r_on.peer_fetches, 0u);
  // Total fills are conserved; peer fills replace origin fetches 1:1.
  EXPECT_EQ(r_on.origin.fetches + r_on.peer_fetches, r_off.origin.fetches);
  EXPECT_LT(r_on.origin.bytes, r_off.origin.bytes);
  // Log records themselves are unchanged by the fill path.
  ASSERT_EQ(r_on.trace.size(), r_off.trace.size());
  EXPECT_EQ(r_on.trace[r_on.trace.size() / 2],
            r_off.trace[r_off.trace.size() / 2]);
}

TEST(SimulatorTest, UnsortedEventsRejected) {
  synth::WorkloadGenerator gen(synth::SiteProfile::P1(0.01), 1);
  auto events = gen.Generate(100);
  ASSERT_GE(events.size(), 2u);
  std::swap(events.front(), events.back());
  Simulator sim(SmallConfig(), 0);
  EXPECT_THROW(sim.Run(gen, events), std::invalid_argument);
}

TEST(SimulatorTest, FinalVideoChunkBilledAtActualSize) {
  // Regression: the final chunk of a video whose size is not a multiple of
  // chunk_bytes used to be looked up and origin-filled at the full
  // chunk_bytes, inflating edge occupancy and origin bytes for every such
  // video. A cold full watch must pull exactly the object's bytes.
  synth::WorkloadGenerator gen(synth::SiteProfile::V1(0.01), 3);
  const synth::Catalog& catalog = gen.catalog();
  SimulatorConfig config = SmallConfig();

  std::size_t target = catalog.size();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto& obj = catalog.object(i);
    if (obj.content_class == trace::ContentClass::kVideo &&
        obj.size_bytes > config.chunk_bytes &&
        obj.size_bytes % config.chunk_bytes != 0) {
      target = i;
      break;
    }
  }
  ASSERT_LT(target, catalog.size()) << "no non-multiple video in catalog";
  const auto& obj = catalog.object(target);

  synth::RequestEvent ev;
  ev.timestamp_ms = 1000;
  ev.user_index = 0;
  ev.object_index = static_cast<std::uint32_t>(target);
  ev.session_start = true;
  ev.watch_fraction = 1.0;

  Simulator sim(config, 0);
  const auto result = sim.Run(gen, {ev});
  const std::uint64_t expected_chunks =
      (obj.size_bytes + config.chunk_bytes - 1) / config.chunk_bytes;
  ASSERT_EQ(result.trace.size(), expected_chunks);
  // Every chunk is a cold miss; origin traffic and miss-byte accounting
  // must both equal the object size, not a whole-chunk roundup.
  EXPECT_EQ(result.origin.bytes, obj.size_bytes);
  EXPECT_EQ(result.edge_stats.miss_bytes, obj.size_bytes);
  // The emitted records already carried the true size; they must agree
  // with what the cache layer was billed.
  std::uint64_t response_bytes = 0;
  for (const auto& r : result.trace.records()) response_bytes += r.response_bytes;
  EXPECT_EQ(response_bytes, obj.size_bytes);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  const auto a = SimulateSite(synth::SiteProfile::V2(0.01), 0, SmallConfig(), 23);
  const auto b = SimulateSite(synth::SiteProfile::V2(0.01), 0, SmallConfig(), 23);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); i += 97) {
    EXPECT_EQ(a.trace[i], b.trace[i]);
  }
}

TEST(ScenarioTest, PaperStudyProducesAllFiveSites) {
  const auto scenario = Scenario::PaperStudy(0.005, SmallConfig(), 31);
  EXPECT_EQ(scenario.site_count(), 5u);
  const auto merged = testutil::MaterializeMerged(scenario);
  EXPECT_TRUE(merged.IsSortedByTime());
  std::set<std::uint32_t> publishers;
  for (const auto& r : merged.records()) publishers.insert(r.publisher_id);
  EXPECT_EQ(publishers.size(), 5u);
  EXPECT_EQ(scenario.registry().Get(0).name, "V-1");
}

}  // namespace
}  // namespace atlas::cdn
