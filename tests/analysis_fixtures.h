// Shared hand-built trace fixtures for the analysis tests.
#pragma once

#include <cstdint>

#include "trace/record.h"
#include "trace/trace_buffer.h"
#include "util/time.h"

namespace atlas::analysis::testing {

struct RecordSpec {
  std::int64_t t = 0;
  std::uint64_t url = 1;
  std::uint64_t user = 1;
  trace::FileType type = trace::FileType::kJpg;
  std::uint64_t size = 1000;
  std::uint64_t bytes = 1000;
  std::uint16_t code = trace::kHttpOk;
  trace::CacheStatus cache = trace::CacheStatus::kHit;
  std::int8_t tz = 0;
  std::uint16_t ua = 0;
  std::uint32_t pub = 0;
};

inline trace::LogRecord MakeRecord(const RecordSpec& spec) {
  trace::LogRecord r;
  r.timestamp_ms = spec.t;
  r.url_hash = spec.url;
  r.user_id = spec.user;
  r.file_type = spec.type;
  r.object_size = spec.size;
  r.response_bytes = spec.bytes;
  r.response_code = spec.code;
  r.cache_status = spec.cache;
  r.tz_offset_quarter_hours = spec.tz;
  r.user_agent_id = spec.ua;
  r.publisher_id = spec.pub;
  return r;
}

}  // namespace atlas::analysis::testing
