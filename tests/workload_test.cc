#include "synth/workload.h"

#include <gtest/gtest.h>

#include <map>

#include "util/time.h"

namespace atlas::synth {
namespace {

TEST(WorkloadGeneratorTest, HitsRequestBudget) {
  WorkloadGenerator gen(SiteProfile::P1(0.01), 1);
  const auto events = gen.Generate(5000);
  EXPECT_EQ(events.size(), 5000u);
}

TEST(WorkloadGeneratorTest, DefaultBudgetFromProfile) {
  const auto profile = SiteProfile::P2(0.01);
  WorkloadGenerator gen(profile, 1);
  const auto events = gen.Generate();
  EXPECT_EQ(events.size(), profile.total_requests);
}

TEST(WorkloadGeneratorTest, EventsSortedAndInWeek) {
  WorkloadGenerator gen(SiteProfile::V2(0.01), 2);
  const auto events = gen.Generate(8000);
  std::int64_t prev = 0;
  for (const auto& ev : events) {
    EXPECT_GE(ev.timestamp_ms, prev);
    EXPECT_GE(ev.timestamp_ms, 0);
    EXPECT_LT(ev.timestamp_ms, util::kMillisPerWeek);
    prev = ev.timestamp_ms;
  }
}

TEST(WorkloadGeneratorTest, IndicesInRange) {
  WorkloadGenerator gen(SiteProfile::S1(0.01), 3);
  const auto events = gen.Generate(5000);
  for (const auto& ev : events) {
    EXPECT_LT(ev.user_index, gen.users().size());
    EXPECT_LT(ev.object_index, gen.catalog().size());
    EXPECT_GT(ev.watch_fraction, 0.0);
    EXPECT_LE(ev.watch_fraction, 1.0);
  }
}

TEST(WorkloadGeneratorTest, Deterministic) {
  WorkloadGenerator a(SiteProfile::V1(0.01), 42);
  WorkloadGenerator b(SiteProfile::V1(0.01), 42);
  const auto ea = a.Generate(2000);
  const auto eb = b.Generate(2000);
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].timestamp_ms, eb[i].timestamp_ms);
    EXPECT_EQ(ea[i].user_index, eb[i].user_index);
    EXPECT_EQ(ea[i].object_index, eb[i].object_index);
  }
}

TEST(WorkloadGeneratorTest, DifferentSeedsDiffer) {
  WorkloadGenerator a(SiteProfile::V1(0.01), 1);
  WorkloadGenerator b(SiteProfile::V1(0.01), 2);
  const auto ea = a.Generate(1000);
  const auto eb = b.Generate(1000);
  int same = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    if (ea[i].object_index == eb[i].object_index) ++same;
  }
  EXPECT_LT(same, 900);
}

TEST(WorkloadGeneratorTest, SessionStartsMarked) {
  WorkloadGenerator gen(SiteProfile::V1(0.01), 5);
  const auto events = gen.Generate(5000);
  std::size_t session_starts = 0;
  for (const auto& ev : events) session_starts += ev.session_start ? 1 : 0;
  // Roughly one session start per mean_requests_per_session events.
  EXPECT_GT(session_starts, events.size() / 10);
  EXPECT_LT(session_starts, events.size());
}

TEST(WorkloadGeneratorTest, RepeatRateTracksAddictionKnob) {
  SiteProfile addictive = SiteProfile::V1(0.01);
  addictive.repeat_request_prob = 0.5;
  addictive.favorite_adopt_prob = 0.8;
  SiteProfile casual = addictive;
  casual.repeat_request_prob = 0.0;

  WorkloadGenerator a(addictive, 7);
  WorkloadGenerator b(casual, 7);
  const auto count_repeats = [](const std::vector<RequestEvent>& evs) {
    std::size_t n = 0;
    for (const auto& ev : evs) n += ev.is_repeat ? 1 : 0;
    return n;
  };
  EXPECT_GT(count_repeats(a.Generate(10000)), 500u);
  EXPECT_EQ(count_repeats(b.Generate(10000)), 0u);
}

TEST(WorkloadGeneratorTest, AnomalyRatesRoughlyRespected) {
  SiteProfile profile = SiteProfile::P1(0.01);
  profile.hotlink_rate = 0.05;
  profile.bad_range_rate = 0.03;
  profile.beacon_rate = 0.02;
  WorkloadGenerator gen(profile, 9);
  const auto events = gen.Generate(20000);
  std::map<Anomaly, int> counts;
  for (const auto& ev : events) ++counts[ev.anomaly];
  EXPECT_NEAR(counts[Anomaly::kHotlink] / 20000.0, 0.05, 0.01);
  EXPECT_NEAR(counts[Anomaly::kBadRange] / 20000.0, 0.03, 0.01);
  EXPECT_NEAR(counts[Anomaly::kBeacon] / 20000.0, 0.02, 0.01);
}

TEST(WorkloadGeneratorTest, ChunkInflationEstimate) {
  WorkloadGenerator video(SiteProfile::V1(0.01), 11);
  WorkloadGenerator image(SiteProfile::P1(0.01), 11);
  // Video-heavy sites inflate strongly under 2 MB chunking; image sites
  // barely at all.
  EXPECT_GT(video.EstimateRecordsPerRequest(2 << 20), 2.0);
  EXPECT_LT(image.EstimateRecordsPerRequest(2 << 20), 1.5);
  // Chunking disabled -> no inflation.
  EXPECT_DOUBLE_EQ(video.EstimateRecordsPerRequest(0), 1.0);
}

TEST(WorkloadGeneratorTest, PopularObjectsDominat) {
  WorkloadGenerator gen(SiteProfile::V1(0.01), 13);
  const auto events = gen.Generate(20000);
  std::map<std::uint32_t, int> counts;
  for (const auto& ev : events) ++counts[ev.object_index];
  int top = 0;
  for (const auto& [idx, c] : counts) top = std::max(top, c);
  // Zipf demand: the hottest object gets far more than the uniform share.
  EXPECT_GT(top, 20000 / static_cast<int>(gen.catalog().size()) * 5);
}

}  // namespace
}  // namespace atlas::synth
