#include "analysis/devices.h"

#include <gtest/gtest.h>

#include "analysis_fixtures.h"
#include "cdn/simulator.h"

namespace atlas::analysis {
namespace {

using testing::MakeRecord;
using testing::RecordSpec;

std::uint16_t UaIdFor(trace::DeviceType device) {
  return trace::UaBank::Instance().IdsForDevice(device).front();
}

TEST(DeviceCompositionTest, SharesOverUniqueUsers) {
  trace::TraceBuffer buf;
  const auto desktop = UaIdFor(trace::DeviceType::kDesktop);
  const auto android = UaIdFor(trace::DeviceType::kAndroid);
  // User 1 (desktop) makes many requests; users 2 and 3 (android) one each.
  for (int i = 0; i < 10; ++i) {
    buf.Add(MakeRecord({.t = i, .user = 1, .ua = desktop}));
  }
  buf.Add(MakeRecord({.t = 100, .user = 2, .ua = android}));
  buf.Add(MakeRecord({.t = 101, .user = 3, .ua = android}));
  const auto result = ComputeDeviceComposition(buf, "X");
  EXPECT_EQ(result.unique_users, 3u);
  // User shares count users, not requests: 1/3 desktop, 2/3 android.
  EXPECT_NEAR(result.user_share[0], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(result.user_share[1], 2.0 / 3.0, 1e-9);
  // Request shares weight by traffic: 10/12 desktop.
  EXPECT_NEAR(result.request_share[0], 10.0 / 12.0, 1e-9);
  EXPECT_NEAR(result.MobileShare(), 2.0 / 3.0, 1e-9);
}

TEST(DeviceCompositionTest, OsAndBrowserShares) {
  trace::TraceBuffer buf;
  buf.Add(MakeRecord({.user = 1, .ua = UaIdFor(trace::DeviceType::kIos)}));
  const auto result = ComputeDeviceComposition(buf, "X");
  EXPECT_NEAR(result.os_share[static_cast<std::size_t>(trace::OsFamily::kIosOs)],
              1.0, 1e-9);
}

TEST(DeviceCompositionTest, EmptyTrace) {
  const auto result = ComputeDeviceComposition(trace::TraceBuffer{}, "E");
  EXPECT_EQ(result.unique_users, 0u);
  EXPECT_DOUBLE_EQ(result.MobileShare(), 1.0);  // degenerate but defined
}

// Closed loop (Fig. 4): generated device mixes are recovered through UA
// re-parsing, and the cross-site ordering holds (S-1 most mobile, V-2 most
// desktop).
TEST(DeviceCompositionClosedLoopTest, RecoversProfileMixes) {
  cdn::SimulatorConfig config;
  const auto s1 = cdn::SimulateSite(synth::SiteProfile::S1(0.05), 0, config, 3);
  const auto v2 = cdn::SimulateSite(synth::SiteProfile::V2(0.02), 1, config, 3);
  const auto ds1 = ComputeDeviceComposition(s1.trace, "S-1");
  const auto dv2 = ComputeDeviceComposition(v2.trace, "V-2");
  // Paper: >1/3 of S-1 users are non-desktop; >95% of V-2 users desktop.
  EXPECT_GT(ds1.MobileShare(), 1.0 / 3.0 - 0.05);
  EXPECT_GT(dv2.user_share[0], 0.92);
  EXPECT_GT(ds1.MobileShare(), dv2.MobileShare());
}

}  // namespace
}  // namespace atlas::analysis
