#include "analysis/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "analysis_fixtures.h"

namespace atlas::analysis {
namespace {

using testing::MakeRecord;
using testing::RecordSpec;

trace::TraceBuffer SmallTrace() {
  trace::TraceBuffer buf;
  buf.Add(MakeRecord({.t = 0, .url = 1, .user = 1,
                      .type = trace::FileType::kMp4, .size = 5000000,
                      .bytes = 2000000, .code = trace::kHttpPartialContent}));
  buf.Add(MakeRecord({.t = 1000, .url = 2, .user = 2,
                      .type = trace::FileType::kJpg, .size = 20000,
                      .bytes = 20000}));
  buf.Add(MakeRecord({.t = 2000, .url = 2, .user = 2,
                      .type = trace::FileType::kJpg, .size = 20000,
                      .bytes = 20000}));
  return buf;
}

TEST(ReportTest, DatasetSummaries) {
  std::ostringstream out;
  RenderDatasetSummaries({ComputeDatasetSummary(SmallTrace(), "X-1")}, out);
  EXPECT_NE(out.str().find("X-1"), std::string::npos);
  EXPECT_NE(out.str().find("records"), std::string::npos);
  EXPECT_NE(out.str().find("3"), std::string::npos);
}

TEST(ReportTest, ContentAndTrafficComposition) {
  const auto comp = ComputeComposition(SmallTrace(), "X-1");
  std::ostringstream out;
  RenderContentComposition({comp}, out);
  RenderTrafficComposition({comp}, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("video"), std::string::npos);
  EXPECT_NE(text.find("(b) request size"), std::string::npos);
  EXPECT_NE(text.find("50.0%"), std::string::npos);  // 1 of 2 objects is video
}

TEST(ReportTest, HourlyVolumeHas24Rows) {
  const auto hv = ComputeHourlyVolume(SmallTrace(), "X-1");
  std::ostringstream out;
  RenderHourlyVolume({hv}, out);
  // Rows labeled 0..23.
  EXPECT_NE(out.str().find("\n23"), std::string::npos);
  EXPECT_NE(out.str().find("peak hour"), std::string::npos);
}

TEST(ReportTest, SizeDistributionsMentionBimodality) {
  const auto sizes = ComputeSizeDistributions(SmallTrace(), "X-1");
  std::ostringstream out;
  RenderSizeDistributions({sizes}, out);
  EXPECT_NE(out.str().find("image bimodal"), std::string::npos);
}

TEST(ReportTest, AgingRendersBothVariants) {
  const auto aging = ComputeAging(SmallTrace(), "X-1");
  std::ostringstream out;
  RenderAging({aging}, out);
  EXPECT_NE(out.str().find("observability-corrected"), std::string::npos);
  EXPECT_NE(out.str().find("raw variant"), std::string::npos);
}

TEST(ReportTest, SessionsAndEngagement) {
  const auto sessions = ComputeSessions(SmallTrace(), "X-1");
  const auto engagement = ComputeEngagement(SmallTrace(), "X-1");
  std::ostringstream out;
  RenderSessions({sessions}, out);
  RenderRepeatedAccess(engagement, out);
  RenderEngagement({engagement}, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("Fig. 11"), std::string::npos);
  EXPECT_NE(text.find("median IAT"), std::string::npos);
  EXPECT_NE(text.find("addicted objects"), std::string::npos);
}

TEST(ReportTest, CachingAndResponseCodes) {
  const auto caching = ComputeCaching(SmallTrace(), "X-1");
  std::ostringstream out;
  RenderCaching({caching}, out);
  RenderResponseCodes({caching}, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("overall hit ratio"), std::string::npos);
  EXPECT_NE(text.find("206"), std::string::npos);
  EXPECT_NE(text.find("304"), std::string::npos);
}

TEST(ReportTest, EmptySiteListsDoNotCrash) {
  std::ostringstream out;
  RenderDatasetSummaries({}, out);
  RenderContentComposition({}, out);
  RenderHourlyVolume({}, out);
  RenderDeviceComposition({}, out);
  RenderSizeDistributions({}, out);
  RenderPopularity({}, out);
  RenderAging({}, out);
  RenderSessions({}, out);
  RenderEngagement({}, out);
  RenderCaching({}, out);
  RenderResponseCodes({}, out);
  SUCCEED();
}

}  // namespace
}  // namespace atlas::analysis
