// Differential golden-digest harness for the SoA batch pipeline.
//
// The batch refactor's contract: moving records through fixed-size SoA
// RecordBlocks (trace/block.h) instead of one LogRecord at a time changes
// nothing observable. FNV-1a digests prove it:
//
//   1. the rendered analysis report (all ten per-site modules plus trend
//      clustering) is byte-identical between the per-record path and the
//      block path, at 1/2/8 analysis threads, pinned to one golden digest;
//   2. that digest is invariant to block size — swept over {1, 7, 97, 1024,
//      4096, 8191, 8192}, sizes chosen so the sweep covers single-record
//      blocks, prime sizes that never divide the trace, and a ragged final
//      partial block;
//   3. the sharded simulation's merged v2 trace is byte-identical whether
//      the engine streams into a RecordSink or a BlockSink, with and
//      without checkpointing armed, at 1/2/8 worker threads — the
//      full-scenario run is pinned to the same golden digest the
//      kill-resume suite enforces.
//
// Labeled `batch-diff` so CI gates the equivalence proof explicitly.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/suite.h"
#include "cdn/engine.h"
#include "cdn/scenario.h"
#include "scenario_fixtures.h"
#include "synth/site_profile.h"
#include "synth/workload.h"
#include "trace/block.h"
#include "trace/sink.h"
#include "trace/stream.h"
#include "util/hash.h"
#include "util/logging.h"

namespace atlas {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};
// Single-record blocks, primes that divide nothing, the defaults, and the
// default's prime neighbor. The golden trace is not a multiple of any of
// the sizes > 1, so every sweep point ends on a partial final block.
constexpr std::size_t kBlockSweep[] = {1, 7, 97, 1024, 4096, 8191, 8192};

// Same golden scenario the kill-resume suite pins: PaperAdultSites(0.01),
// seed 42, peer fill + push. The v2 digest below must match
// kill_resume_test's kGoldenV2Digest — two suites enforcing one constant.
constexpr std::uint64_t kGoldenV2Digest = 0xef475dbcd9a33c2dULL;
constexpr std::uint64_t kGoldenRecords = 53664;

// Pinned digest of the full rendered report for the analysis scenario
// below. If this moves, the batch path and the per-record path moved
// together — a deliberate generator/analysis change; say which in the
// commit message.
constexpr std::uint64_t kGoldenReportDigest = 0x673b3ee6fc5b043ULL;

cdn::SimulatorConfig GoldenConfig() {
  cdn::SimulatorConfig config;
  config.topology.edge_capacity_bytes = 256ULL << 20;
  config.peer_fill = true;
  config.push.enabled = true;
  config.push.top_n = 100;
  return config;
}

analysis::SuiteConfig ReportConfig(int threads) {
  analysis::SuiteConfig config;
  config.trend.min_requests = 60;
  config.trend.max_objects = 40;
  config.threads = threads;
  return config;
}

const cdn::Scenario& GoldenScenario() {
  static const cdn::Scenario* scenario = [] {
    util::SetLogLevel(util::LogLevel::kWarn);
    return new cdn::Scenario(synth::SiteProfile::PaperAdultSites(0.01),
                             GoldenConfig(), 42, /*threads=*/2);
  }();
  return *scenario;
}

const trace::TraceBuffer& GoldenMerged() {
  static const trace::TraceBuffer* merged =
      new trace::TraceBuffer(testutil::MaterializeMerged(GoldenScenario()));
  return *merged;
}

std::uint64_t ReportDigest(analysis::AnalysisSuite& suite) {
  std::ostringstream out;
  suite.Render(out);
  return util::Fnv1a64(out.str());
}

// The per-record differential baseline: one LogRecord at a time.
std::uint64_t PerRecordReportDigest(int threads) {
  trace::BufferSource source(GoldenMerged());
  analysis::AnalysisSuite suite(source, GoldenScenario().registry(),
                                ReportConfig(threads));
  return ReportDigest(suite);
}

std::uint64_t BlockReportDigest(int threads, std::size_t block_records) {
  trace::BufferBlockSource source(GoldenMerged(), block_records);
  analysis::AnalysisSuite suite(source, GoldenScenario().registry(),
                                ReportConfig(threads));
  return ReportDigest(suite);
}

TEST(BatchDiffReportTest, PerRecordBaselineMatchesPinnedDigest) {
  for (const int threads : kThreadCounts) {
    EXPECT_EQ(PerRecordReportDigest(threads), kGoldenReportDigest)
        << "threads=" << threads;
  }
}

TEST(BatchDiffReportTest, BlockPathMatchesPerRecordAtAnyThreadCount) {
  for (const int threads : kThreadCounts) {
    EXPECT_EQ(BlockReportDigest(threads, trace::kDefaultBlockRecords),
              kGoldenReportDigest)
        << "threads=" << threads;
  }
}

TEST(BatchDiffReportTest, ReportInvariantToBlockSizeSweep) {
  // None of the swept sizes > 1 divides the golden trace, so every run
  // decodes a ragged final partial block; size 1 degenerates the batch
  // path to one-record blocks.
  for (const std::size_t block_records : kBlockSweep) {
    if (block_records > 1) {
      ASSERT_NE(GoldenMerged().size() % block_records, 0u)
          << "sweep size " << block_records
          << " divides the trace; partial-final-block coverage lost";
    }
    EXPECT_EQ(BlockReportDigest(/*threads=*/2, block_records),
              kGoldenReportDigest)
        << "block_records=" << block_records;
  }
}

TEST(BatchDiffSimTest, ScenarioThroughBlockSinkMatchesGoldenBytes) {
  // Per-record producer -> SoA packer -> block-aware v2 writer must emit
  // the exact bytes the per-record WriterSink pipeline is pinned to.
  util::SetLogLevel(util::LogLevel::kWarn);
  for (const int threads : kThreadCounts) {
    std::ostringstream out;
    trace::TraceWriter writer(out);
    trace::WriterBlockSink block_sink(writer);
    trace::PerRecordSink packer(block_sink);
    cdn::StreamScenario(synth::SiteProfile::PaperAdultSites(0.01),
                        GoldenConfig(), 42, packer, threads);
    packer.Flush();
    writer.Finish();
    EXPECT_EQ(writer.written(), kGoldenRecords) << "threads=" << threads;
    EXPECT_EQ(util::Fnv1a64(out.str()), kGoldenV2Digest)
        << "threads=" << threads;
  }
}

// Two-site job set for driving cdn::RunSharded directly (the scenario
// layer normally owns this plumbing).
struct JobSet {
  std::vector<std::unique_ptr<synth::WorkloadGenerator>> generators;
  std::vector<std::vector<synth::RequestEvent>> events;
  std::vector<cdn::SiteJob> jobs;
};

const JobSet& GoldenJobs() {
  static const JobSet* jobs = [] {
    util::SetLogLevel(util::LogLevel::kWarn);
    auto* js = new JobSet;
    std::uint64_t seed = 7;
    for (const auto& profile :
         {synth::SiteProfile::V1(0.01), synth::SiteProfile::P2(0.01)}) {
      auto gen = std::make_unique<synth::WorkloadGenerator>(profile, seed++);
      js->events.push_back(gen->Generate());
      js->generators.push_back(std::move(gen));
    }
    for (std::size_t i = 0; i < js->generators.size(); ++i) {
      js->jobs.push_back({js->generators[i].get(), &js->events[i],
                          static_cast<std::uint32_t>(i + 1)});
    }
    return js;
  }();
  return *jobs;
}

std::string RunEngineRecordSink(int threads) {
  std::ostringstream out;
  trace::TraceWriter writer(out);
  trace::WriterSink sink(writer);
  cdn::RunSharded(GoldenJobs().jobs, GoldenConfig(), sink, threads);
  writer.Finish();
  return out.str();
}

std::string RunEngineBlockSink(int threads) {
  std::ostringstream out;
  trace::TraceWriter writer(out);
  trace::WriterBlockSink sink(writer);
  cdn::RunSharded(GoldenJobs().jobs, GoldenConfig(), sink, threads);
  writer.Finish();
  return out.str();
}

TEST(BatchDiffSimTest, EngineBlockSinkOverloadMatchesRecordSink) {
  const std::string golden = RunEngineRecordSink(/*threads=*/1);
  ASSERT_FALSE(golden.empty());
  for (const int threads : kThreadCounts) {
    EXPECT_EQ(RunEngineBlockSink(threads), golden) << "threads=" << threads;
  }
}

TEST(BatchDiffSimTest, EngineBlockSinkCheckpointCadenceNeverChangesBytes) {
  // The checkpointing overload flushes the packer inside every snapshot
  // commit; those extra flushes must not move a single output byte.
  const std::string golden = RunEngineRecordSink(/*threads=*/1);
  const std::string ckpt_path =
      ::testing::TempDir() + "/atlas_batch_diff_engine.ckpt";
  std::ostringstream out;
  trace::TraceWriter writer(out);
  trace::WriterBlockSink sink(writer);
  cdn::CheckpointOptions opts;
  opts.every_epochs = 24;
  opts.path = ckpt_path;
  opts.save_extra = [&writer](ckpt::Writer& w) { writer.SaveState(w); };
  cdn::RunSharded(GoldenJobs().jobs, GoldenConfig(), sink, /*threads=*/2,
                  opts);
  writer.Finish();
  EXPECT_EQ(out.str(), golden);
  std::remove(ckpt_path.c_str());
}

}  // namespace
}  // namespace atlas
