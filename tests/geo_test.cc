#include "analysis/geo.h"

#include <gtest/gtest.h>

#include "analysis_fixtures.h"
#include "cdn/scenario.h"
#include "util/time.h"

namespace atlas::analysis {
namespace {

using testing::MakeRecord;
using testing::RecordSpec;

TEST(GeoTest, GroupsByTimezoneContinent) {
  trace::TraceBuffer buf;
  // NA user (UTC-6 = -24 quarter hours): 2 requests.
  buf.Add(MakeRecord({.t = 0, .url = 1, .user = 1, .bytes = 100, .tz = -24}));
  buf.Add(MakeRecord({.t = 1000, .url = 2, .user = 1, .bytes = 50, .tz = -24}));
  // EU user (UTC+1): 1 request.
  buf.Add(MakeRecord({.t = 2000, .url = 3, .user = 2, .bytes = 10, .tz = 4}));
  // Asia user (UTC+8): 1 request.
  buf.Add(MakeRecord({.t = 3000, .url = 4, .user = 3, .bytes = 20, .tz = 32}));
  const auto geo = ComputeGeo(buf, "X");
  EXPECT_EQ(geo.of(synth::Continent::kNorthAmerica).requests, 2u);
  EXPECT_EQ(geo.of(synth::Continent::kNorthAmerica).bytes, 150u);
  EXPECT_EQ(geo.of(synth::Continent::kNorthAmerica).unique_users, 1u);
  EXPECT_EQ(geo.of(synth::Continent::kEurope).requests, 1u);
  EXPECT_EQ(geo.of(synth::Continent::kAsia).requests, 1u);
  EXPECT_EQ(geo.of(synth::Continent::kSouthAmerica).requests, 0u);
  EXPECT_EQ(geo.TotalRequests(), 4u);
  EXPECT_DOUBLE_EQ(geo.RequestShare(synth::Continent::kNorthAmerica), 0.5);
}

TEST(GeoTest, UtcHourlyAccounting) {
  trace::TraceBuffer buf;
  for (int i = 0; i < 5; ++i) {
    buf.Add(MakeRecord({.t = 3 * util::kMillisPerHour + i, .url = 1,
                        .user = 1, .bytes = 10, .tz = -24}));
  }
  buf.Add(MakeRecord({.t = 10 * util::kMillisPerHour, .url = 1, .user = 1,
                      .bytes = 10, .tz = -24}));
  const auto geo = ComputeGeo(buf, "X");
  const auto& na = geo.of(synth::Continent::kNorthAmerica);
  EXPECT_EQ(na.PeakUtcHour(), 3);
  EXPECT_DOUBLE_EQ(na.utc_hourly_requests[3], 5.0);
  EXPECT_GT(na.PeakHourlyBytes(1), 0.0);
}

TEST(GeoTest, EmptyTraceSafe) {
  const auto geo = ComputeGeo(trace::TraceBuffer{}, "E");
  EXPECT_EQ(geo.TotalRequests(), 0u);
  EXPECT_DOUBLE_EQ(geo.RequestShare(synth::Continent::kEurope), 0.0);
}

// Closed loop: the generator's continent mix is recovered from the trace.
TEST(GeoClosedLoopTest, RecoversContinentMix) {
  cdn::SimulatorConfig config;
  const auto profile = synth::SiteProfile::V1(0.02);
  const auto sim = cdn::SimulateSite(profile, 0, config, 3);
  const auto geo = ComputeGeo(sim.trace, "V-1");
  // Profile mix {NA 0.45, EU 0.30, AS 0.15, SA 0.10}; request shares follow
  // user shares loosely (heavy-tailed activity adds variance).
  EXPECT_GT(geo.RequestShare(synth::Continent::kNorthAmerica), 0.2);
  EXPECT_GT(geo.RequestShare(synth::Continent::kEurope), 0.1);
  EXPECT_GT(geo.RequestShare(synth::Continent::kAsia), 0.02);
  EXPECT_GT(geo.RequestShare(synth::Continent::kSouthAmerica), 0.02);
  // Every region's users are a subset of the site's users.
  std::uint64_t users = 0;
  for (const auto& c : geo.continents) users += c.unique_users;
  EXPECT_EQ(users, sim.trace.UniqueUsers());
}

}  // namespace
}  // namespace atlas::analysis
