#include "analysis/forecast.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace atlas::analysis {
namespace {

// A pure 24h-seasonal signal over `days` days: value depends only on
// hour-of-day.
stats::TimeSeries SeasonalSignal(int days, double phase_hours = 0.0,
                                 double amplitude = 10.0, double mean = 20.0) {
  stats::TimeSeries ts(1, static_cast<std::size_t>(days) * 24);
  for (std::size_t h = 0; h < ts.size(); ++h) {
    ts[h] = mean + amplitude * std::cos(2.0 * M_PI *
                                        (static_cast<double>(h) - phase_hours) /
                                        24.0);
  }
  return ts;
}

TEST(SeasonalNaiveTest, PerfectOnPureSeasonalSignal) {
  const auto ts = SeasonalSignal(7);
  const auto f = SeasonalNaiveForecast(ts, 5 * 24);
  EXPECT_EQ(f.predictions.size(), 2u * 24u);
  EXPECT_NEAR(f.mae, 0.0, 1e-9);
  EXPECT_NEAR(f.rmse, 0.0, 1e-9);
}

TEST(SeasonalNaiveTest, ErrorsReflectNoise) {
  util::Rng rng(3);
  auto ts = SeasonalSignal(7);
  for (std::size_t h = 0; h < ts.size(); ++h) ts[h] += rng.NextGaussian(0, 2.0);
  const auto f = SeasonalNaiveForecast(ts, 5 * 24);
  EXPECT_GT(f.mae, 0.5);
  EXPECT_LT(f.mae, 6.0);
  EXPECT_GE(f.rmse, f.mae);
}

TEST(SeasonalNaiveTest, ValidatesWindows) {
  const auto ts = SeasonalSignal(3);
  EXPECT_THROW(SeasonalNaiveForecast(ts, 12), std::invalid_argument);
  EXPECT_THROW(SeasonalNaiveForecast(ts, ts.size()), std::invalid_argument);
  EXPECT_THROW(SeasonalNaiveForecast(ts, 48, 0), std::invalid_argument);
}

TEST(HoltWintersTest, TracksSeasonalSignal) {
  const auto ts = SeasonalSignal(7);
  const auto f = HoltWintersForecast(ts, 5 * 24);
  EXPECT_LT(f.mae, 1.0);
  EXPECT_LT(f.mape, 0.1);
}

TEST(HoltWintersTest, TracksTrendedSeasonalSignal) {
  auto ts = SeasonalSignal(7);
  for (std::size_t h = 0; h < ts.size(); ++h) {
    ts[h] += 0.05 * static_cast<double>(h);  // slow upward trend
  }
  const auto hw = HoltWintersForecast(ts, 5 * 24);
  const auto naive = SeasonalNaiveForecast(ts, 5 * 24);
  // Holt-Winters models the trend; seasonal-naive cannot.
  EXPECT_LT(hw.mae, naive.mae);
}

TEST(HoltWintersTest, PredictionsNonNegative) {
  util::Rng rng(7);
  stats::TimeSeries ts(1, 7 * 24);
  for (std::size_t h = 0; h < ts.size(); ++h) {
    ts[h] = std::max(0.0, rng.NextGaussian(1.0, 2.0));
  }
  const auto f = HoltWintersForecast(ts, 5 * 24);
  for (double p : f.predictions) EXPECT_GE(p, 0.0);
}

TEST(HoltWintersTest, RequiresTwoSeasons) {
  const auto ts = SeasonalSignal(3);
  EXPECT_THROW(HoltWintersForecast(ts, 30), std::invalid_argument);
}

TEST(PooledVsSeparatedTest, SeparationWinsOnOpposedPhases) {
  // Two components with opposite phases and different trends: the pooled
  // series has a muddled seasonal profile, so per-component forecasting
  // should win — the paper's "account for adult traffic separately" claim.
  auto adult = SeasonalSignal(7, 2.0, 8.0, 15.0);    // peaks ~2am
  auto regular = SeasonalSignal(7, 21.0, 12.0, 30.0); // peaks ~9pm
  for (std::size_t h = 0; h < adult.size(); ++h) {
    adult[h] *= 1.0 + 0.002 * static_cast<double>(h);   // adult grows
    regular[h] *= 1.0 - 0.001 * static_cast<double>(h); // regular shrinks
  }
  const auto cmp = ComparePooledVsSeparated({adult, regular}, 5 * 24);
  EXPECT_LE(cmp.separated.mae, cmp.pooled.mae * 1.05);
}

TEST(PooledVsSeparatedTest, SinglComponentIdentical) {
  const auto ts = SeasonalSignal(7);
  const auto cmp = ComparePooledVsSeparated({ts}, 5 * 24);
  EXPECT_NEAR(cmp.pooled.mae, cmp.separated.mae, 1e-9);
}

TEST(HourProfileTest, NormalizedAndShapeCorrect) {
  const auto ts = SeasonalSignal(5, 2.0);
  const auto profile = HourProfile(ts, 5 * 24);
  double total = 0.0;
  for (double p : profile) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Peak at hour 2 (phase), trough at hour 14.
  EXPECT_GT(profile[2], profile[14]);
}

TEST(HourProfileTest, ZeroSeriesFallsBackToUniform) {
  stats::TimeSeries zero(1, 48);
  const auto profile = HourProfile(zero, 48);
  for (double p : profile) EXPECT_NEAR(p, 1.0 / 24.0, 1e-12);
}

TEST(TemplateForecastTest, PerfectWithMatchingTemplate) {
  const auto ts = SeasonalSignal(7, 3.0);
  const auto profile = HourProfile(ts, 5 * 24);
  const auto f = TemplateForecast(ts, 5 * 24, profile);
  EXPECT_LT(f.mape, 0.02);
}

TEST(TemplateForecastTest, WrongPhaseTemplateIsWorse) {
  const auto adult = SeasonalSignal(7, 2.0);       // 2am peak
  const auto canonical = SeasonalSignal(7, 21.0);  // 9pm peak
  const auto own = TemplateForecast(adult, 5 * 24, HourProfile(adult, 5 * 24));
  const auto wrong =
      TemplateForecast(adult, 5 * 24, HourProfile(canonical, 5 * 24));
  EXPECT_LT(own.mae, wrong.mae * 0.5);
}

TEST(HoltWintersAutoTest, AtLeastAsGoodAsFixedOnValidation) {
  util::Rng rng(9);
  auto ts = SeasonalSignal(7);
  for (std::size_t h = 0; h < ts.size(); ++h) ts[h] += rng.NextGaussian(0, 1.0);
  const auto auto_fit = HoltWintersAutoForecast(ts, 5 * 24);
  EXPECT_LT(auto_fit.mape, 0.25);
}

TEST(HoltWintersAutoTest, RequiresThreeSeasons) {
  const auto ts = SeasonalSignal(3);
  EXPECT_THROW(HoltWintersAutoForecast(ts, 2 * 24), std::invalid_argument);
}

TEST(PooledVsSeparatedTest, Validation) {
  EXPECT_THROW(ComparePooledVsSeparated({}, 24), std::invalid_argument);
  const auto a = SeasonalSignal(7);
  const auto b = SeasonalSignal(6);
  EXPECT_THROW(ComparePooledVsSeparated({a, b}, 5 * 24),
               std::invalid_argument);
}

}  // namespace
}  // namespace atlas::analysis
