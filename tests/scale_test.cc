// Scale-hardening tests (ctest -L scale).
//
// The memory-bounded synth tables (synth::ShardStore) must be invisible in
// the output: a run whose tables are forced into lazy RNG-snapshot shards
// has to reproduce the resident run byte-for-byte, at every thread count.
// Both sides are pinned to a golden digest captured before the lazy-shard
// refactor, so neither mode can drift. The remaining tests enforce the
// memory-budget contract itself: cache accounting, bounded RSS while
// streaming a table that exceeds its budget, and the guarantee that the
// paper-scale profiles (scale 1.0–5.0) stay resident under the default
// budget — the regime the BENCH_scale.json sweep measures.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <utility>

#include "cdn/engine.h"
#include "cdn/scenario.h"
#include "synth/catalog.h"
#include "synth/site_profile.h"
#include "synth/user_model.h"
#include "synth/workload.h"
#include "trace/sink.h"
#include "trace/trace_io.h"
#include "util/hash.h"
#include "util/mem.h"
#include "util/rng.h"

namespace atlas {
namespace {

// Golden scale-0.05 scenario digest, captured from the tree *before* the
// ShardStore refactor (resident tables only). 251519 records across the
// five paper sites; invariant across thread counts.
constexpr std::uint64_t kScale005Digest = 0x29813041e2fc5820ULL;
constexpr std::uint64_t kScale005Records = 251519;

cdn::SimulatorConfig GoldenConfig() {
  cdn::SimulatorConfig config;
  config.topology.edge_capacity_bytes = 256ULL << 20;
  config.peer_fill = true;
  config.push.enabled = true;
  config.push.top_n = 100;
  return config;
}

// Runs the five-site scale-0.05 scenario with the given synth-table budget
// and returns {records, digest of the serialized trace}.
std::pair<std::uint64_t, std::uint64_t> RunScenario(std::uint64_t budget_bytes,
                                                    int threads) {
  auto sites = synth::SiteProfile::PaperAdultSites(0.05);
  for (auto& site : sites) site.synth_table_budget_bytes = budget_bytes;
  std::ostringstream out;
  trace::TraceWriter writer(out);
  trace::WriterSink sink(writer);
  cdn::StreamScenario(sites, GoldenConfig(), 42, sink, threads);
  writer.Finish();
  return {writer.written(), util::Fnv1a64(out.str())};
}

TEST(ScaleDigestTest, ResidentRunMatchesPinnedGolden) {
  for (int threads : {1, 2, 8}) {
    const auto [records, digest] = RunScenario(256ULL << 20, threads);
    EXPECT_EQ(records, kScale005Records) << "threads=" << threads;
    EXPECT_EQ(digest, kScale005Digest) << "threads=" << threads;
  }
}

TEST(ScaleDigestTest, LazyShardRunMatchesPinnedGolden) {
  // 64 KB forces every site's catalog and user table into lazy shards; the
  // trace must still be byte-identical to the resident golden.
  for (int threads : {1, 2, 8}) {
    const auto [records, digest] = RunScenario(1u << 16, threads);
    EXPECT_EQ(records, kScale005Records) << "threads=" << threads;
    EXPECT_EQ(digest, kScale005Digest) << "threads=" << threads;
  }
}

TEST(ScaleStoreTest, LazyCatalogEqualsResidentFieldByField) {
  const auto profile = synth::SiteProfile::V2(0.1);
  auto lazy_profile = profile;
  lazy_profile.synth_table_budget_bytes = 1u << 16;

  util::Rng rng_a(7), rng_b(7);
  const synth::Catalog resident(profile, rng_a);
  const synth::Catalog lazy(lazy_profile, rng_b);
  ASSERT_FALSE(resident.lazy());
  ASSERT_TRUE(lazy.lazy());
  ASSERT_EQ(resident.size(), lazy.size());

  // Both RNG streams must be in the same place after construction.
  EXPECT_EQ(rng_a.Next(), rng_b.Next());

  for (std::size_t i = 0; i < resident.size(); ++i) {
    const synth::ObjectMeta a = resident.object(i);
    const synth::ObjectMeta b = lazy.object(i);
    ASSERT_EQ(a.url_hash, b.url_hash) << i;
    ASSERT_EQ(a.content_class, b.content_class) << i;
    ASSERT_EQ(a.file_type, b.file_type) << i;
    ASSERT_EQ(a.size_bytes, b.size_bytes) << i;
    ASSERT_EQ(a.popularity_weight, b.popularity_weight) << i;
    ASSERT_EQ(a.injected_at_ms, b.injected_at_ms) << i;
    ASSERT_EQ(a.pattern.type, b.pattern.type) << i;
  }
  // Aggregates are accumulated during the build pass, not from the table.
  EXPECT_EQ(resident.CountsByClass(), lazy.CountsByClass());
  EXPECT_EQ(resident.CountsByPattern(), lazy.CountsByPattern());
}

TEST(ScaleStoreTest, LazyUserTableEqualsResidentFieldByField) {
  const auto profile = synth::SiteProfile::P1(0.1);
  auto lazy_profile = profile;
  lazy_profile.synth_table_budget_bytes = 1u << 16;

  util::Rng rng_a(11), rng_b(11);
  const synth::UserPopulation resident(profile, rng_a);
  const synth::UserPopulation lazy(lazy_profile, rng_b);
  ASSERT_FALSE(resident.lazy());
  ASSERT_TRUE(lazy.lazy());
  ASSERT_EQ(resident.size(), lazy.size());
  EXPECT_EQ(rng_a.Next(), rng_b.Next());

  for (std::size_t i = 0; i < resident.size(); ++i) {
    const synth::UserInfo a = resident.user(i);
    const synth::UserInfo b = lazy.user(i);
    ASSERT_EQ(a.user_id, b.user_id) << i;
    ASSERT_EQ(a.device, b.device) << i;
    ASSERT_EQ(a.user_agent_id, b.user_agent_id) << i;
    ASSERT_EQ(a.continent, b.continent) << i;
    ASSERT_EQ(a.tz_offset_quarter_hours, b.tz_offset_quarter_hours) << i;
    ASSERT_EQ(a.activity, b.activity) << i;
    ASSERT_EQ(a.incognito, b.incognito) << i;
  }
  EXPECT_EQ(resident.DeviceShares(), lazy.DeviceShares());
}

TEST(ScaleStoreTest, LazyCacheStaysWithinItsShardBudget) {
  auto profile = synth::SiteProfile::V2(0.1);
  profile.synth_table_budget_bytes = 1u << 20;  // 512 KB per table
  util::Rng rng(3);
  const synth::Catalog catalog(profile, rng);
  ASSERT_TRUE(catalog.lazy());
  const auto& store = catalog.store();

  // Hammer random indices, then check the cache never exceeded its cap.
  util::Rng access(17);
  for (int i = 0; i < 5000; ++i) {
    (void)catalog.object(access.NextBounded(catalog.size()));
    ASSERT_LE(store.cached_shards(), store.max_cached_shards());
  }
  EXPECT_GT(store.materializations(), 0u);
  // The cap itself honors the budget: cached bytes <= budget plus at most
  // one shard of slack (the floor of two shards).
  const std::uint64_t shard_bytes =
      store.shard_items() * sizeof(synth::ObjectMeta);
  EXPECT_LE(store.max_cached_shards() * shard_bytes,
            profile.synth_table_budget_bytes / 2 + 2 * shard_bytes);
}

TEST(ScaleStoreTest, StreamingALazyTableBoundsRss) {
  // A user table 20x its budget must stream (construct + ForEach) without
  // ever holding the full table: the RSS growth stays far below the
  // resident footprint. Skipped where RSS metering is unavailable.
  if (util::CurrentRssBytes() == 0) GTEST_SKIP() << "no RSS source";

  auto profile = synth::SiteProfile::V1(8.0);
  profile.synth_table_budget_bytes = 4u << 20;  // 2 MB per table
  const std::uint64_t resident_bytes =
      static_cast<std::uint64_t>(profile.num_users) * sizeof(synth::UserInfo);
  ASSERT_GT(resident_bytes, 20 * (profile.synth_table_budget_bytes / 2));

  const std::uint64_t rss_before = util::CurrentRssBytes();
  util::Rng rng(5);
  const synth::UserPopulation users(profile, rng);
  ASSERT_TRUE(users.lazy());
  std::uint64_t seen = 0;
  users.ForEachUser([&](std::size_t, const synth::UserInfo&) { ++seen; });
  EXPECT_EQ(seen, users.size());
  const std::uint64_t rss_after = util::CurrentRssBytes();

  // Budget math (documented in DESIGN.md): what stays resident is the
  // activity alias table (~16 B/user) plus its 8 B/user build buffer and
  // shard snapshots — not the 32 B UserInfo records themselves. The growth
  // must stay within that resident-regardless budget plus allocator slack,
  // which is well below the table + alias footprint a resident build pays
  // (~90 MB here).
  const std::uint64_t grown = rss_after > rss_before ? rss_after - rss_before : 0;
  EXPECT_LT(grown, 24u * users.size() + (32u << 20))
      << "lazy user table RSS exceeds alias-table + slack budget";
  EXPECT_LT(grown, resident_bytes + 24u * users.size())
      << "lazy streaming paid the full resident footprint";
}

TEST(ScalePaperRangeTest, DefaultBudgetKeepsPaperScalesResident) {
  // The documented workflow (README): scale 1.0–5.0 runs fit the default
  // 256 MB synth-table budget with everything resident — lazy shards are
  // the backstop for larger populations or explicitly tightened budgets.
  for (double scale : {1.0, 5.0}) {
    for (const auto& profile : synth::SiteProfile::PaperAdultSites(scale)) {
      EXPECT_LE(static_cast<std::uint64_t>(profile.num_objects) *
                    sizeof(synth::ObjectMeta),
                profile.synth_table_budget_bytes / 2)
          << profile.name << " scale " << scale;
      EXPECT_LE(static_cast<std::uint64_t>(profile.num_users) *
                    sizeof(synth::UserInfo),
                profile.synth_table_budget_bytes / 2)
          << profile.name << " scale " << scale;
    }
  }
  synth::WorkloadGenerator gen(synth::SiteProfile::V1(1.0), 1);
  EXPECT_FALSE(gen.catalog().lazy());
  EXPECT_FALSE(gen.users().lazy());
}

TEST(ScalePaperRangeTest, ScaleOneSiteSimulatesWithBoundedRss) {
  // One paper site at full scale 1.0, simulated end to end. The synth
  // tables stay inside their budget; total RSS growth is dominated by the
  // event buffers and must stay within the documented envelope.
  const std::uint64_t rss_before = util::CurrentRssBytes();
  auto profile = synth::SiteProfile::P2(1.0);
  std::ostringstream out;
  trace::TraceWriter writer(out);
  trace::WriterSink sink(writer);
  cdn::StreamScenario({profile}, GoldenConfig(), 42, sink, 1);
  writer.Finish();
  EXPECT_GT(writer.written(), 0u);
  if (rss_before > 0) {
    const std::uint64_t rss_after = util::CurrentRssBytes();
    const std::uint64_t grown =
        rss_after > rss_before ? rss_after - rss_before : 0;
    EXPECT_LT(grown, 2ull << 30) << "scale-1.0 site exceeded the 2 GB envelope";
  }
}

}  // namespace
}  // namespace atlas
