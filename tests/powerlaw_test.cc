#include "stats/powerlaw.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace atlas::stats {
namespace {

std::vector<double> ParetoSamples(double alpha, double x_min, int n,
                                  std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v.push_back(rng.NextPareto(x_min, alpha - 1.0));
  return v;
}

TEST(FitPowerLawTest, RecoversKnownExponent) {
  // Pareto(shape k) density ~ x^-(k+1) => power-law alpha = k + 1.
  const auto samples = ParetoSamples(2.5, 1.0, 50000, 42);
  const auto fit = FitPowerLaw(samples, 1.0);
  EXPECT_NEAR(fit.alpha, 2.5, 0.05);
  EXPECT_LT(fit.ks, 0.02);
  EXPECT_EQ(fit.tail_n, samples.size());
}

TEST(FitPowerLawTest, TailOnly) {
  auto samples = ParetoSamples(3.0, 10.0, 20000, 7);
  samples.insert(samples.end(), 5000, 1.0);  // sub-threshold mass ignored
  const auto fit = FitPowerLaw(samples, 10.0);
  EXPECT_NEAR(fit.alpha, 3.0, 0.08);
  EXPECT_EQ(fit.tail_n, 20000u);
}

TEST(FitPowerLawTest, BadArgsThrow) {
  EXPECT_THROW(FitPowerLaw({1, 2, 3}, 0.0), std::invalid_argument);
  EXPECT_THROW(FitPowerLaw({1, 2, 3}, 100.0), std::invalid_argument);
}

TEST(FitPowerLawTest, DegenerateAllEqual) {
  const auto fit = FitPowerLaw({5, 5, 5, 5}, 5.0);
  EXPECT_TRUE(std::isinf(fit.alpha));
  EXPECT_DOUBLE_EQ(fit.ks, 0.0);
}

TEST(FitPowerLawAutoTest, FindsGoodXMin) {
  // Lognormal body + power-law tail from x >= 5.
  util::Rng rng(13);
  std::vector<double> samples;
  for (int i = 0; i < 3000; ++i) {
    samples.push_back(rng.NextRange(1.0, 4.0));  // non-power-law body
  }
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.NextPareto(5.0, 1.8));
  const auto fit = FitPowerLawAuto(samples);
  EXPECT_NEAR(fit.alpha, 2.8, 0.2);
  EXPECT_GE(fit.x_min, 4.0);
}

TEST(FitPowerLawAutoTest, ThrowsOnNoPositive) {
  EXPECT_THROW(FitPowerLawAuto({0.0, -1.0}), std::invalid_argument);
}

TEST(TopShareTest, UniformIsProportional) {
  std::vector<double> v(100, 1.0);
  EXPECT_NEAR(TopShare(v, 0.1), 0.1, 1e-12);
}

TEST(TopShareTest, FullySkewed) {
  std::vector<double> v(100, 0.0);
  v[0] = 1000.0;
  EXPECT_DOUBLE_EQ(TopShare(v, 0.01), 1.0);
}

TEST(TopShareTest, EdgeFractions) {
  std::vector<double> v = {1, 2, 3};
  EXPECT_DOUBLE_EQ(TopShare(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(TopShare(v, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(TopShare({}, 0.5), 0.0);
}

TEST(GiniTest, PerfectEquality) {
  std::vector<double> v(50, 3.0);
  EXPECT_NEAR(Gini(v), 0.0, 1e-12);
}

TEST(GiniTest, ExtremeInequality) {
  std::vector<double> v(1000, 0.0);
  v[0] = 1.0;
  EXPECT_NEAR(Gini(v), 1.0, 0.01);
}

TEST(GiniTest, KnownValue) {
  // For {1, 3}: gini = (2*(1*1+2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25.
  EXPECT_NEAR(Gini({1.0, 3.0}), 0.25, 1e-12);
}

TEST(GiniTest, SmallInputs) {
  EXPECT_DOUBLE_EQ(Gini({}), 0.0);
  EXPECT_DOUBLE_EQ(Gini({5.0}), 0.0);
}

}  // namespace
}  // namespace atlas::stats
