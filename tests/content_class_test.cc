#include "trace/content_class.h"

#include <gtest/gtest.h>

namespace atlas::trace {
namespace {

TEST(ClassOfTest, PaperCategories) {
  // §IV-A's examples: video (FLV, MP4, MPG, AVI, WMV), image (JPG, PNG,
  // GIF, TIFF, BMP), other (text, audio, HTML, CSS, XML, JS).
  EXPECT_EQ(ClassOf(FileType::kFlv), ContentClass::kVideo);
  EXPECT_EQ(ClassOf(FileType::kMp4), ContentClass::kVideo);
  EXPECT_EQ(ClassOf(FileType::kMpg), ContentClass::kVideo);
  EXPECT_EQ(ClassOf(FileType::kAvi), ContentClass::kVideo);
  EXPECT_EQ(ClassOf(FileType::kWmv), ContentClass::kVideo);
  EXPECT_EQ(ClassOf(FileType::kJpg), ContentClass::kImage);
  EXPECT_EQ(ClassOf(FileType::kPng), ContentClass::kImage);
  EXPECT_EQ(ClassOf(FileType::kGif), ContentClass::kImage);
  EXPECT_EQ(ClassOf(FileType::kTiff), ContentClass::kImage);
  EXPECT_EQ(ClassOf(FileType::kBmp), ContentClass::kImage);
  EXPECT_EQ(ClassOf(FileType::kHtml), ContentClass::kOther);
  EXPECT_EQ(ClassOf(FileType::kCss), ContentClass::kOther);
  EXPECT_EQ(ClassOf(FileType::kJs), ContentClass::kOther);
  EXPECT_EQ(ClassOf(FileType::kXml), ContentClass::kOther);
  EXPECT_EQ(ClassOf(FileType::kMp3), ContentClass::kOther);
  EXPECT_EQ(ClassOf(FileType::kUnknown), ContentClass::kOther);
}

TEST(FileTypeFromExtensionTest, CaseAndDotInsensitive) {
  EXPECT_EQ(FileTypeFromExtension("mp4"), FileType::kMp4);
  EXPECT_EQ(FileTypeFromExtension(".MP4"), FileType::kMp4);
  EXPECT_EQ(FileTypeFromExtension("JPEG"), FileType::kJpg);
  EXPECT_EQ(FileTypeFromExtension("jpg"), FileType::kJpg);
  EXPECT_EQ(FileTypeFromExtension("tif"), FileType::kTiff);
  EXPECT_EQ(FileTypeFromExtension("htm"), FileType::kHtml);
  EXPECT_EQ(FileTypeFromExtension("m4v"), FileType::kMp4);
  EXPECT_EQ(FileTypeFromExtension("mpeg"), FileType::kMpg);
}

TEST(FileTypeFromExtensionTest, UnknownExtensions) {
  EXPECT_EQ(FileTypeFromExtension("exe"), FileType::kUnknown);
  EXPECT_EQ(FileTypeFromExtension(""), FileType::kUnknown);
}

TEST(FileTypeFromUrlTest, ParsesPaths) {
  EXPECT_EQ(FileTypeFromUrl("/videos/clip.mp4"), FileType::kMp4);
  EXPECT_EQ(FileTypeFromUrl("/a/b/thumb.jpg?size=small"), FileType::kJpg);
  EXPECT_EQ(FileTypeFromUrl("https://x.com/v/1.flv#t=30"), FileType::kFlv);
  EXPECT_EQ(FileTypeFromUrl("/gallery.with.dots/pic.png"), FileType::kPng);
}

TEST(FileTypeFromUrlTest, NoExtension) {
  EXPECT_EQ(FileTypeFromUrl("/api/stream"), FileType::kUnknown);
  EXPECT_EQ(FileTypeFromUrl("/dir/"), FileType::kUnknown);
  EXPECT_EQ(FileTypeFromUrl("/file."), FileType::kUnknown);
  EXPECT_EQ(FileTypeFromUrl(""), FileType::kUnknown);
}

}  // namespace
}  // namespace atlas::trace
