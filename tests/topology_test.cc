#include "cdn/topology.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace atlas::cdn {
namespace {

TEST(TopologyTest, OneDcPerContinentByDefault) {
  Topology topo(TopologyConfig{});
  EXPECT_EQ(topo.dc_count(), 4u);
}

TEST(TopologyTest, MultipleDcsPerContinent) {
  TopologyConfig config;
  config.dcs_per_continent = 3;
  Topology topo(config);
  EXPECT_EQ(topo.dc_count(), 12u);
}

TEST(TopologyTest, RoutesToOwnContinent) {
  Topology topo(TopologyConfig{});
  for (int c = 0; c < synth::kNumContinents; ++c) {
    const auto continent = static_cast<synth::Continent>(c);
    const auto& dc = topo.Route(continent, 12345);
    EXPECT_EQ(dc.continent, continent);
  }
}

TEST(TopologyTest, RoutingIsStablePerUser) {
  TopologyConfig config;
  config.dcs_per_continent = 4;
  Topology topo(config);
  for (std::uint64_t user = 1; user < 50; ++user) {
    const auto& a = topo.Route(synth::Continent::kEurope, user);
    const auto& b = topo.Route(synth::Continent::kEurope, user);
    EXPECT_EQ(&a, &b);
  }
}

TEST(TopologyTest, ShardingSpreadsUsers) {
  TopologyConfig config;
  config.dcs_per_continent = 4;
  Topology topo(config);
  std::map<const DataCenter*, int> counts;
  for (std::uint64_t user = 0; user < 4000; ++user) {
    ++counts[&topo.Route(synth::Continent::kAsia, user * 2654435761ULL)];
  }
  EXPECT_EQ(counts.size(), 4u);
  for (const auto& [dc, count] : counts) {
    EXPECT_GT(count, 700);  // ~1000 expected per shard
  }
}

TEST(TopologyTest, DcNamesDistinct) {
  TopologyConfig config;
  config.dcs_per_continent = 2;
  Topology topo(config);
  std::set<std::string> names;
  for (std::size_t i = 0; i < topo.dc_count(); ++i) {
    names.insert(topo.dc(i).name);
  }
  EXPECT_EQ(names.size(), topo.dc_count());
}

TEST(TopologyTest, EdgePolicyApplied) {
  TopologyConfig config;
  config.edge_policy = PolicyKind::kGdsf;
  Topology topo(config);
  EXPECT_EQ(topo.dc(0).cache->name(), "GDSF");
}

TEST(TopologyTest, OriginAccounting) {
  Topology topo(TopologyConfig{});
  topo.FetchFromOrigin(100);
  topo.FetchFromOrigin(250);
  EXPECT_EQ(topo.origin().fetches, 2u);
  EXPECT_EQ(topo.origin().bytes, 350u);
}

TEST(TopologyTest, TotalEdgeStatsAggregates) {
  Topology topo(TopologyConfig{});
  topo.mutable_dc(0).cache->Access(1, 100, 0);
  topo.mutable_dc(0).cache->Access(1, 100, 1);
  topo.mutable_dc(1).cache->Access(2, 100, 0);
  const auto total = topo.TotalEdgeStats();
  EXPECT_EQ(total.hits, 1u);
  EXPECT_EQ(total.misses, 2u);
}

TEST(TopologyTest, RejectsBadConfig) {
  TopologyConfig config;
  config.dcs_per_continent = 0;
  EXPECT_THROW(Topology{config}, std::invalid_argument);
}

}  // namespace
}  // namespace atlas::cdn
