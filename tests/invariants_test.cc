// Cross-module property tests: end-to-end invariants that must hold for
// every site profile and every seed, independent of calibration.
#include <gtest/gtest.h>

#include <set>

#include "cdn/simulator.h"
#include "trace/content_class.h"
#include "trace/useragent.h"
#include "util/time.h"

namespace atlas {
namespace {

struct Case {
  const char* name;
  synth::SiteProfile (*profile)(double);
  std::uint64_t seed;
};

class TraceInvariantsTest : public ::testing::TestWithParam<Case> {
 protected:
  static cdn::SiteSimulation Simulate(const Case& c) {
    cdn::SimulatorConfig config;
    config.topology.edge_capacity_bytes = 256ULL << 20;
    return cdn::SimulateSite(c.profile(0.01), 7, config, c.seed);
  }
};

TEST_P(TraceInvariantsTest, EveryRecordIsWellFormed) {
  const auto result = Simulate(GetParam());
  const auto& bank = trace::UaBank::Instance();
  ASSERT_GT(result.trace.size(), 100u);
  EXPECT_TRUE(result.trace.IsSortedByTime());

  const std::set<std::uint16_t> kValidCodes = {200, 204, 206, 304, 403, 416};
  for (const auto& r : result.trace.records()) {
    // Identity and metadata.
    EXPECT_EQ(r.publisher_id, 7u);
    EXPECT_NE(r.url_hash, 0u);
    EXPECT_NE(r.user_id, 0u);
    EXPECT_LT(r.user_agent_id, bank.size());
    EXPECT_GT(r.object_size, 0u);
    // Timestamps: inside the observed week (chunk pacing can push a little
    // past the last request, never past week + an hour).
    EXPECT_GE(r.timestamp_ms, 0);
    EXPECT_LT(r.timestamp_ms, util::kMillisPerWeek + util::kMillisPerHour);
    // Timezone offsets within UTC-14..+14.
    EXPECT_GE(r.tz_offset_quarter_hours, -14 * 4);
    EXPECT_LE(r.tz_offset_quarter_hours, 14 * 4);
    // Response codes from the paper's set, with consistent byte semantics.
    EXPECT_TRUE(kValidCodes.count(r.response_code)) << r.response_code;
    EXPECT_LE(r.response_bytes, r.object_size);
    switch (r.response_code) {
      case trace::kHttpOk:
        EXPECT_GT(r.response_bytes, 0u);
        break;
      case trace::kHttpPartialContent:
        // Range responses only make sense for video content here.
        EXPECT_EQ(trace::ClassOf(r.file_type), trace::ContentClass::kVideo);
        EXPECT_GT(r.response_bytes, 0u);
        break;
      case trace::kHttpNotModified:
      case trace::kHttpNoContent:
      case trace::kHttpForbidden:
      case trace::kHttpRangeNotSatisfiable:
        EXPECT_EQ(r.response_bytes, 0u);
        break;
      default:
        break;
    }
  }
}

TEST_P(TraceInvariantsTest, CacheAccountingIsConserved) {
  const auto result = Simulate(GetParam());
  // Trace-level hit/miss counts equal the simulator's edge stats.
  std::uint64_t hits = 0, misses = 0;
  for (const auto& r : result.trace.records()) {
    if (r.response_code == trace::kHttpOk ||
        r.response_code == trace::kHttpPartialContent ||
        r.response_code == trace::kHttpNotModified) {
      (r.cache_status == trace::CacheStatus::kHit ? hits : misses) += 1;
    }
  }
  EXPECT_EQ(hits, result.edge_stats.hits);
  EXPECT_EQ(misses, result.edge_stats.misses);
  // Without peering, every edge miss is exactly one origin fetch.
  EXPECT_EQ(result.origin.fetches + result.peer_fetches,
            result.edge_stats.misses);
  // Per-DC stats aggregate to the totals.
  cdn::CacheStats sum;
  for (const auto& s : result.per_dc_stats) sum.Merge(s);
  EXPECT_EQ(sum.hits, result.edge_stats.hits);
  EXPECT_EQ(sum.misses, result.edge_stats.misses);
}

TEST_P(TraceInvariantsTest, UsersKeepStableAttributes) {
  const auto result = Simulate(GetParam());
  // A user's UA and timezone never change mid-trace (they are per-user
  // attributes in the model, as the paper's per-user analyses assume).
  std::unordered_map<std::uint64_t, std::pair<std::uint16_t, std::int8_t>>
      seen;
  for (const auto& r : result.trace.records()) {
    const auto [it, inserted] = seen.try_emplace(
        r.user_id, std::make_pair(r.user_agent_id, r.tz_offset_quarter_hours));
    if (!inserted) {
      EXPECT_EQ(it->second.first, r.user_agent_id);
      EXPECT_EQ(it->second.second, r.tz_offset_quarter_hours);
    }
  }
}

TEST_P(TraceInvariantsTest, ObjectsKeepStableAttributes) {
  const auto result = Simulate(GetParam());
  // An object's size and file type are immutable across its records.
  std::unordered_map<std::uint64_t,
                     std::pair<std::uint64_t, trace::FileType>>
      seen;
  for (const auto& r : result.trace.records()) {
    const auto [it, inserted] = seen.try_emplace(
        r.url_hash, std::make_pair(r.object_size, r.file_type));
    if (!inserted) {
      EXPECT_EQ(it->second.first, r.object_size);
      EXPECT_EQ(it->second.second, r.file_type);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, TraceInvariantsTest,
    ::testing::Values(Case{"V1", &synth::SiteProfile::V1, 3},
                      Case{"V2", &synth::SiteProfile::V2, 5},
                      Case{"P1", &synth::SiteProfile::P1, 7},
                      Case{"P2", &synth::SiteProfile::P2, 11},
                      Case{"S1", &synth::SiteProfile::S1, 13},
                      Case{"N1", &synth::SiteProfile::NonAdult, 17}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace atlas
