#include "analysis/sessions.h"

#include <gtest/gtest.h>

#include "analysis_fixtures.h"
#include "cdn/simulator.h"
#include "util/time.h"

namespace atlas::analysis {
namespace {

using testing::MakeRecord;
using testing::RecordSpec;
using util::kMillisPerMinute;

TEST(SessionizeTest, TimeoutSplitsSessions) {
  trace::TraceBuffer buf;
  // User 1: requests at 0, 1min, 2min (one session), then 30min (second).
  buf.Add(MakeRecord({.t = 0, .user = 1}));
  buf.Add(MakeRecord({.t = kMillisPerMinute, .user = 1}));
  buf.Add(MakeRecord({.t = 2 * kMillisPerMinute, .user = 1}));
  buf.Add(MakeRecord({.t = 30 * kMillisPerMinute, .user = 1}));
  const auto sessions = Sessionize(buf);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].requests, 3u);
  EXPECT_EQ(sessions[0].LengthMs(), 2 * kMillisPerMinute);
  EXPECT_EQ(sessions[1].requests, 1u);
  EXPECT_EQ(sessions[1].LengthMs(), 0);
}

TEST(SessionizeTest, BoundaryGapExactlyTimeoutStays) {
  trace::TraceBuffer buf;
  buf.Add(MakeRecord({.t = 0, .user = 1}));
  buf.Add(MakeRecord({.t = kSessionTimeoutMs, .user = 1}));
  EXPECT_EQ(Sessionize(buf).size(), 1u);
  trace::TraceBuffer buf2;
  buf2.Add(MakeRecord({.t = 0, .user = 1}));
  buf2.Add(MakeRecord({.t = kSessionTimeoutMs + 1, .user = 1}));
  EXPECT_EQ(Sessionize(buf2).size(), 2u);
}

TEST(SessionizeTest, UsersIndependent) {
  trace::TraceBuffer buf;
  buf.Add(MakeRecord({.t = 0, .user = 1}));
  buf.Add(MakeRecord({.t = 1000, .user = 2}));
  const auto sessions = Sessionize(buf);
  EXPECT_EQ(sessions.size(), 2u);
}

TEST(SessionizeTest, UnsortedInputHandled) {
  trace::TraceBuffer buf;
  buf.Add(MakeRecord({.t = 2 * kMillisPerMinute, .user = 1}));
  buf.Add(MakeRecord({.t = 0, .user = 1}));
  const auto sessions = Sessionize(buf);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].LengthMs(), 2 * kMillisPerMinute);
}

TEST(SessionizeTest, OutputOrderIsUserSortedNotHashOrdered) {
  // The returned vector's order must be a function of the input, not of
  // hash-table layout: ascending user id, chronological within a user.
  trace::TraceBuffer buf;
  for (const std::uint64_t user : {9u, 3u, 7u, 1u, 5u}) {
    buf.Add(MakeRecord({.t = 0, .user = user}));
    buf.Add(MakeRecord({.t = 40 * kMillisPerMinute, .user = user}));
  }
  const auto sessions = Sessionize(buf);
  ASSERT_EQ(sessions.size(), 10u);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    EXPECT_EQ(sessions[i].user_id, 2 * (i / 2) + 1) << "index " << i;
    EXPECT_EQ(sessions[i].start_ms,
              i % 2 == 0 ? 0 : 40 * kMillisPerMinute);
  }
}

TEST(SessionizeTest, BadTimeoutThrows) {
  EXPECT_THROW(Sessionize(trace::TraceBuffer{}, 0), std::invalid_argument);
}

TEST(ComputeSessionsTest, IatIncludesInterSessionGaps) {
  trace::TraceBuffer buf;
  buf.Add(MakeRecord({.t = 0, .user = 1}));
  buf.Add(MakeRecord({.t = 10 * 1000, .user = 1}));
  buf.Add(MakeRecord({.t = 3600 * 1000, .user = 1}));
  const auto result = ComputeSessions(buf, "X");
  EXPECT_EQ(result.iat_seconds.count(), 2u);
  EXPECT_DOUBLE_EQ(result.iat_seconds.Max(), 3590.0);
}

TEST(ComputeSessionsTest, RequestsPerSessionDistribution) {
  trace::TraceBuffer buf;
  buf.Add(MakeRecord({.t = 0, .user = 1}));
  buf.Add(MakeRecord({.t = 1000, .user = 1}));
  buf.Add(MakeRecord({.t = 0, .user = 2}));
  const auto result = ComputeSessions(buf, "X");
  EXPECT_EQ(result.session_count, 2u);
  EXPECT_DOUBLE_EQ(result.requests_per_session.Mean(), 1.5);
}

// Closed loop (Figs. 11-12): video sites have much shorter IATs than image
// sites, and their sessions last on the order of a minute.
TEST(SessionsClosedLoopTest, VideoShorterIatThanImage) {
  cdn::SimulatorConfig config;
  const auto v1 = cdn::SimulateSite(synth::SiteProfile::V1(0.01), 0, config, 3);
  const auto p1 = cdn::SimulateSite(synth::SiteProfile::P1(0.01), 1, config, 3);
  const auto sv = ComputeSessions(v1.trace, "V-1");
  const auto sp = ComputeSessions(p1.trace, "P-1");
  // Paper: video median IAT < 10 min; image-heavy median > 1 h.
  EXPECT_LT(sv.MedianIatSeconds(), 600.0);
  EXPECT_GT(sp.MedianIatSeconds(), 600.0);
  EXPECT_LT(sv.MedianIatSeconds(), sp.MedianIatSeconds() / 10.0);
  // Video sessions run minutes, not hours.
  EXPECT_GT(sv.MedianSessionSeconds(), 10.0);
  EXPECT_LT(sv.MedianSessionSeconds(), 600.0);
}

}  // namespace
}  // namespace atlas::analysis
