// util::FlatHashMap / FlatHashSet: the open-addressing tables under every
// hot accumulator. The contract the accumulators lean on: value-initialized
// TryEmplace, keep-first InsertIfAbsent, deterministic sorted views for
// serialization, and growth that never loses or duplicates a key.
#include "util/flat_hash.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace atlas::util {
namespace {

TEST(FlatHashMapTest, InsertFindAndOperatorBracket) {
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(1), nullptr);
  m[1] = 10;
  m[2] = 20;
  ++m[1];
  ASSERT_NE(m.Find(1), nullptr);
  EXPECT_EQ(*m.Find(1), 11u);
  EXPECT_EQ(*m.Find(2), 20u);
  EXPECT_EQ(m.Find(3), nullptr);
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatHashMapTest, TryEmplaceValueInitializesOnce) {
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  auto [slot, inserted] = m.TryEmplace(7);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*slot, 0u);  // value-initialized
  *slot = 42;
  auto [again, second] = m.TryEmplace(7);
  EXPECT_FALSE(second);
  EXPECT_EQ(*again, 42u);  // existing value untouched
}

TEST(FlatHashMapTest, InsertIfAbsentKeepsFirst) {
  FlatHashMap<std::uint64_t, std::string> m;
  m.InsertIfAbsent(1, "first");
  m.InsertIfAbsent(1, "second");
  ASSERT_NE(m.Find(1), nullptr);
  EXPECT_EQ(*m.Find(1), "first");
}

TEST(FlatHashMapTest, AtThrowsOnMissingKey) {
  FlatHashMap<std::uint64_t, int> m;
  m[3] = 30;
  EXPECT_EQ(m.At(3), 30);
  EXPECT_THROW(m.At(4), std::out_of_range);
}

TEST(FlatHashMapTest, GrowthPreservesEveryEntry) {
  // Push far past kMinCapacity and the 3/4 load factor so the table
  // rehashes several times.
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  constexpr std::uint64_t kN = 10'000;
  for (std::uint64_t k = 0; k < kN; ++k) m[k * 2654435761u] = k;
  EXPECT_EQ(m.size(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) {
    auto* v = m.Find(k * 2654435761u);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k);
  }
}

TEST(FlatHashMapTest, CollidingKeysProbeCorrectly) {
  // Sequential keys land densely after mixing; with a tiny table most
  // inserts probe past occupied slots.
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t k = 0; k < 64; ++k) m[k] = k + 100;
  for (std::uint64_t k = 0; k < 64; ++k) {
    ASSERT_NE(m.Find(k), nullptr);
    EXPECT_EQ(*m.Find(k), k + 100);
  }
  EXPECT_EQ(m.Find(64), nullptr);
}

TEST(FlatHashMapTest, SortedKeysIsDeterministic) {
  FlatHashMap<std::uint64_t, int> m;
  for (const std::uint64_t k : {9ULL, 2ULL, 7ULL, 4ULL, 1ULL}) {
    m[k] = static_cast<int>(k);
  }
  const std::vector<std::uint64_t> keys = m.SortedKeys();
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 2, 4, 7, 9}));
}

TEST(FlatHashMapTest, ForEachVisitsEveryEntryExactlyOnce) {
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  std::uint64_t key_sum = 0, value_sum = 0;
  for (std::uint64_t k = 1; k <= 100; ++k) m[k] = 2 * k;
  m.ForEach([&](std::uint64_t k, const std::uint64_t& v) {
    key_sum += k;
    value_sum += v;
  });
  EXPECT_EQ(key_sum, 5050u);
  EXPECT_EQ(value_sum, 10100u);
  m.ForEachMutable([](std::uint64_t, std::uint64_t& v) { ++v; });
  EXPECT_EQ(m.At(1), 3u);
  EXPECT_EQ(m.At(100), 201u);
}

TEST(FlatHashMapTest, ClearResetsAndReuses) {
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t k = 0; k < 100; ++k) m[k] = k;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(5), nullptr);
  m[5] = 50;
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.At(5), 50u);
}

TEST(FlatHashMapTest, NonTrivialValuesSurviveRehash) {
  FlatHashMap<std::uint64_t, std::vector<int>> m;
  for (std::uint64_t k = 0; k < 200; ++k) {
    m[k].push_back(static_cast<int>(k));
  }
  for (std::uint64_t k = 0; k < 200; ++k) {
    ASSERT_EQ(m.At(k).size(), 1u) << k;
    EXPECT_EQ(m.At(k)[0], static_cast<int>(k));
  }
}

TEST(FlatHashMapTest, PairKeysSortLexicographically) {
  using Key = std::pair<std::uint64_t, std::uint64_t>;
  FlatHashMap<Key, int, FlatPairHash> m;
  m[{2, 1}] = 1;
  m[{1, 9}] = 2;
  m[{1, 3}] = 3;
  m[{2, 0}] = 4;
  const auto keys = m.SortedKeys();
  const std::vector<Key> expected = {{1, 3}, {1, 9}, {2, 0}, {2, 1}};
  EXPECT_EQ(keys, expected);
  EXPECT_EQ(m.At({1, 3}), 3);
}

TEST(FlatHashSetTest, InsertReportsNovelty) {
  FlatHashSet<std::uint64_t> s;
  EXPECT_TRUE(s.Insert(1));
  EXPECT_FALSE(s.Insert(1));
  EXPECT_TRUE(s.Insert(2));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(1));
  EXPECT_FALSE(s.Contains(3));
}

TEST(FlatHashSetTest, SortedElementsAndGrowth) {
  FlatHashSet<std::uint64_t> s;
  for (std::uint64_t k = 500; k > 0; --k) s.Insert(k);
  EXPECT_EQ(s.size(), 500u);
  const auto sorted = s.SortedElements();
  ASSERT_EQ(sorted.size(), 500u);
  EXPECT_EQ(sorted.front(), 1u);
  EXPECT_EQ(sorted.back(), 500u);
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LT(sorted[i - 1], sorted[i]);
  }
}

TEST(FlatHashMapTest, ReserveAvoidsNothingButStaysCorrect) {
  // reserve() is a hint; behavior must be identical with or without it.
  FlatHashMap<std::uint64_t, std::uint64_t> a, b;
  a.reserve(1000);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    a[k] = k;
    b[k] = k;
  }
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.SortedKeys(), b.SortedKeys());
}

}  // namespace
}  // namespace atlas::util
