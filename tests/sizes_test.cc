#include "analysis/sizes.h"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis_fixtures.h"
#include "cdn/simulator.h"

namespace atlas::analysis {
namespace {

using testing::MakeRecord;
using testing::RecordSpec;

TEST(SizeDistributionsTest, PerObjectNotPerRequest) {
  trace::TraceBuffer buf;
  // One 10 MB video requested 100 times must contribute a single sample.
  for (int i = 0; i < 100; ++i) {
    buf.Add(MakeRecord({.t = i, .url = 1, .type = trace::FileType::kMp4,
                        .size = 10000000}));
  }
  buf.Add(MakeRecord({.t = 200, .url = 2, .type = trace::FileType::kFlv,
                      .size = 5000000}));
  const auto result = ComputeSizeDistributions(buf, "X");
  EXPECT_EQ(result.video.count(), 2u);
  EXPECT_DOUBLE_EQ(result.video.Median(), 7500000.0);
}

TEST(SizeDistributionsTest, SplitsByClass) {
  trace::TraceBuffer buf;
  buf.Add(MakeRecord({.url = 1, .type = trace::FileType::kMp4, .size = 5000000}));
  buf.Add(MakeRecord({.url = 2, .type = trace::FileType::kJpg, .size = 50000}));
  buf.Add(MakeRecord({.url = 3, .type = trace::FileType::kCss, .size = 2000}));
  const auto result = ComputeSizeDistributions(buf, "X");
  EXPECT_EQ(result.video.count(), 1u);
  EXPECT_EQ(result.image.count(), 1u);
  EXPECT_EQ(result.other.count(), 1u);
  EXPECT_DOUBLE_EQ(result.VideoAboveMb(), 1.0);
  EXPECT_DOUBLE_EQ(result.ImageBelowMb(), 1.0);
}

TEST(SizeDistributionsTest, EmptyClassesSafe) {
  trace::TraceBuffer buf;
  buf.Add(MakeRecord({.url = 1, .type = trace::FileType::kJpg}));
  const auto result = ComputeSizeDistributions(buf, "X");
  EXPECT_TRUE(result.video.empty());
  EXPECT_DOUBLE_EQ(result.VideoAboveMb(), 0.0);
}

TEST(ImageBimodalityTest, DetectsTwoPopulations) {
  util::Rng rng(3);
  stats::Ecdf bimodal;
  for (int i = 0; i < 3000; ++i) {
    bimodal.Add(rng.NextLogNormal(std::log(8e3), 0.4));
    bimodal.Add(rng.NextLogNormal(std::log(5e5), 0.4));
  }
  bimodal.Finalize();
  EXPECT_TRUE(ImageSizesAreBimodal(bimodal));

  stats::Ecdf unimodal;
  for (int i = 0; i < 6000; ++i) {
    unimodal.Add(rng.NextLogNormal(std::log(5e4), 0.4));
  }
  unimodal.Finalize();
  EXPECT_FALSE(ImageSizesAreBimodal(unimodal));
}

TEST(ImageBimodalityTest, TooFewSamplesIsFalse) {
  stats::Ecdf e({1e3, 1e6});
  EXPECT_FALSE(ImageSizesAreBimodal(e));
}

// Closed loop (Fig. 5): video mostly >1MB, images mostly <1MB, image sizes
// bimodal.
TEST(SizeClosedLoopTest, PaperShapeHolds) {
  cdn::SimulatorConfig config;
  const auto result =
      cdn::SimulateSite(synth::SiteProfile::V2(0.02), 0, config, 7);
  const auto sizes = ComputeSizeDistributions(result.trace, "V-2");
  EXPECT_GT(sizes.VideoAboveMb(), 0.8);
  EXPECT_GT(sizes.ImageBelowMb(), 0.8);
  EXPECT_TRUE(ImageSizesAreBimodal(sizes.image));
}

TEST(SizeClosedLoopTest, P2HasLargestVideos) {
  // Fig. 5(a): P-2 has the largest video objects.
  cdn::SimulatorConfig config;
  const auto p2 = cdn::SimulateSite(synth::SiteProfile::P2(0.05), 0, config, 9);
  const auto v2 = cdn::SimulateSite(synth::SiteProfile::V2(0.02), 1, config, 9);
  const auto sp2 = ComputeSizeDistributions(p2.trace, "P-2");
  const auto sv2 = ComputeSizeDistributions(v2.trace, "V-2");
  if (!sp2.video.empty() && !sv2.video.empty()) {
    EXPECT_GT(sp2.video.Median(), sv2.video.Median());
  }
}

}  // namespace
}  // namespace atlas::analysis
