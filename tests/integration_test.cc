// End-to-end closed-loop validation: run the whole five-site study at small
// scale and check the paper's headline findings hold in the regenerated
// figures — the same checks EXPERIMENTS.md reports at full scale.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/suite.h"
#include "cdn/scenario.h"
#include "scenario_fixtures.h"
#include "trace/trace_io.h"
#include "util/logging.h"

namespace atlas {
namespace {

class PaperStudyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::SetLogLevel(util::LogLevel::kWarn);
    cdn::SimulatorConfig config;
    config.topology.edge_capacity_bytes = 1ULL << 30;
    scenario_ = new cdn::Scenario(cdn::Scenario::PaperStudy(0.01, config, 42));
    analysis::SuiteConfig suite_config;
    suite_config.run_trend_clusters = false;  // covered by trend tests
    suite_ = new analysis::AnalysisSuite(testutil::MaterializeMerged(*scenario_),
                                         scenario_->registry(), suite_config);
  }
  static void TearDownTestSuite() {
    delete suite_;
    delete scenario_;
    suite_ = nullptr;
    scenario_ = nullptr;
    util::SetLogLevel(util::LogLevel::kInfo);
  }

  static cdn::Scenario* scenario_;
  static analysis::AnalysisSuite* suite_;
};

cdn::Scenario* PaperStudyTest::scenario_ = nullptr;
analysis::AnalysisSuite* PaperStudyTest::suite_ = nullptr;

TEST_F(PaperStudyTest, AllFiveSitesAnalyzed) {
  ASSERT_EQ(suite_->sites().size(), 5u);
  EXPECT_EQ(suite_->sites()[0].site, "V-1");
  EXPECT_EQ(suite_->sites()[4].site, "S-1");
  EXPECT_THROW(suite_->site("nope"), std::out_of_range);
}

// Fig. 1: catalog mixes.
TEST_F(PaperStudyTest, ContentComposition) {
  const auto& v1 = suite_->site("V-1").composition;
  EXPECT_GT(v1.ObjectShare(trace::ContentClass::kVideo), 0.9);
  for (const char* name : {"P-1", "P-2", "S-1"}) {
    EXPECT_GT(suite_->site(name).composition.ObjectShare(
                  trace::ContentClass::kImage),
              0.9)
        << name;
  }
  const auto& v2 = suite_->site("V-2").composition;
  EXPECT_GT(v2.ObjectShare(trace::ContentClass::kImage), 0.7);
  EXPECT_GT(v2.ObjectShare(trace::ContentClass::kVideo), 0.08);
}

// Fig. 2: request and byte mixes; video dominates bytes wherever present.
TEST_F(PaperStudyTest, TrafficComposition) {
  const auto& v1 = suite_->site("V-1").composition;
  EXPECT_GT(v1.RequestShare(trace::ContentClass::kVideo), 0.9);
  const auto& v2 = suite_->site("V-2").composition;
  // V-2 serves more image requests than video requests (657K vs 359K)...
  EXPECT_GT(v2.requests[1], v2.requests[0]);
  // ...but video still dominates delivered bytes.
  EXPECT_GT(v2.ByteShare(trace::ContentClass::kVideo), 0.5);
}

// Fig. 3: adult sites are not classically diurnal; V-1 peaks off-evening.
TEST_F(PaperStudyTest, TemporalPhase) {
  const auto& v1 = suite_->site("V-1").hourly;
  // Peak in the late-night/early-morning band (22:00-08:00 local).
  const int peak = v1.PeakHour();
  EXPECT_TRUE(peak >= 22 || peak <= 8) << "V-1 peak hour " << peak;
}

// Fig. 4: device ordering.
TEST_F(PaperStudyTest, DeviceComposition) {
  EXPECT_GT(suite_->site("S-1").devices.MobileShare(), 0.25);
  EXPECT_GT(suite_->site("V-2").devices.user_share[0], 0.9);
  EXPECT_GT(suite_->site("S-1").devices.MobileShare(),
            suite_->site("V-2").devices.MobileShare());
  // Desktop dominates everywhere (Fig. 4).
  for (const auto& site : suite_->sites()) {
    EXPECT_GT(site.devices.user_share[0], 0.5) << site.site;
  }
}

// Fig. 5: size families.
TEST_F(PaperStudyTest, SizeDistributions) {
  for (const char* name : {"V-1", "V-2"}) {
    EXPECT_GT(suite_->site(name).sizes.VideoAboveMb(), 0.7) << name;
  }
  for (const auto& site : suite_->sites()) {
    if (!site.sizes.image.empty()) {
      EXPECT_GT(site.sizes.ImageBelowMb(), 0.8) << site.site;
    }
  }
}

// Fig. 6: long-tailed popularity everywhere.
TEST_F(PaperStudyTest, PopularitySkew) {
  for (const auto& site : suite_->sites()) {
    EXPECT_GT(site.popularity.top10_share, 0.3) << site.site;
    EXPECT_GT(site.popularity.gini, 0.4) << site.site;
  }
}

// Fig. 7: declining fraction requested with age.
TEST_F(PaperStudyTest, ContentAging) {
  for (const auto& site : suite_->sites()) {
    EXPECT_DOUBLE_EQ(site.aging.fraction_requested[0], 1.0) << site.site;
    EXPECT_LT(site.aging.fraction_requested[6], 0.9) << site.site;
  }
}

// Figs. 11-12: video sites have shorter IATs than image sites.
TEST_F(PaperStudyTest, SessionOrdering) {
  const double v1_iat = suite_->site("V-1").sessions.MedianIatSeconds();
  const double p1_iat = suite_->site("P-1").sessions.MedianIatSeconds();
  const double p2_iat = suite_->site("P-2").sessions.MedianIatSeconds();
  EXPECT_LT(v1_iat, 600.0);
  EXPECT_GT(p1_iat, 1800.0);
  EXPECT_GT(p2_iat, 1800.0);
}

// Figs. 13-14: video is addictive, images are not.
TEST_F(PaperStudyTest, Addiction) {
  EXPECT_GT(suite_->site("V-1").engagement.video_frac_over_10, 0.08);
  EXPECT_LT(suite_->site("P-1").engagement.image_frac_over_10, 0.05);
}

// Figs. 15-16: caching behaviour.
TEST_F(PaperStudyTest, Caching) {
  for (const auto& site : suite_->sites()) {
    // Hit ratio / popularity correlation positive everywhere.
    EXPECT_GT(site.caching.popularity_hit_correlation, 0.2) << site.site;
    // 304s are a tiny share (incognito browsing).
    EXPECT_LT(site.caching.NotModifiedShare(), 0.10) << site.site;
  }
  // Video panels are dominated by 206 for the video sites.
  const auto& v1_codes = suite_->site("V-1").caching.video_response_codes;
  ASSERT_TRUE(v1_codes.count(trace::kHttpPartialContent));
  const auto it200 = v1_codes.find(trace::kHttpOk);
  const std::uint64_t ok = it200 == v1_codes.end() ? 0 : it200->second;
  EXPECT_GT(v1_codes.at(trace::kHttpPartialContent), ok);
}

// The full report renders without crashing and mentions every figure.
TEST_F(PaperStudyTest, ReportRenders) {
  std::ostringstream out;
  suite_->Render(out);
  const std::string text = out.str();
  for (const char* needle :
       {"Fig. 1", "Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7",
        "Figs. 11-12", "Figs. 13-14", "Fig. 15", "Fig. 16", "V-1", "S-1"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

// The merged trace round-trips through binary serialization.
TEST_F(PaperStudyTest, TraceSerializationRoundTrip) {
  const auto merged = testutil::MaterializeMerged(*scenario_);
  std::stringstream stream;
  trace::WriteBinary(merged, stream);
  const auto loaded = trace::ReadBinary(stream);
  ASSERT_EQ(loaded.size(), merged.size());
  for (std::size_t i = 0; i < merged.size(); i += 1009) {
    EXPECT_EQ(loaded[i], merged[i]);
  }
}

}  // namespace
}  // namespace atlas
