#include <gtest/gtest.h>

#include "cdn/cache.h"
#include "cdn/policies.h"
#include "util/rng.h"

namespace atlas::cdn {
namespace {

using trace::CacheStatus;

// --- Policy-generic properties (TEST_P over every policy) --------------------

class CachePolicyTest : public ::testing::TestWithParam<PolicyKind> {
 protected:
  std::unique_ptr<Cache> Make(std::uint64_t capacity) {
    return CreateCache(GetParam(), capacity, /*ttl_ms=*/1000000000LL);
  }
};

TEST_P(CachePolicyTest, MissThenHit) {
  auto cache = Make(1000);
  EXPECT_EQ(cache->Access(1, 100, 0), CacheStatus::kMiss);
  EXPECT_EQ(cache->Access(1, 100, 1), CacheStatus::kHit);
  EXPECT_EQ(cache->stats().hits, 1u);
  EXPECT_EQ(cache->stats().misses, 1u);
}

TEST_P(CachePolicyTest, CapacityNeverExceeded) {
  auto cache = Make(1000);
  util::Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = rng.NextBounded(200);
    const std::uint64_t size = 50 + rng.NextBounded(300);
    cache->Access(key, size, i);
    EXPECT_LE(cache->used_bytes(), cache->capacity_bytes());
  }
}

TEST_P(CachePolicyTest, OversizedObjectNeverAdmitted) {
  auto cache = Make(1000);
  EXPECT_EQ(cache->Access(1, 5000, 0), CacheStatus::kMiss);
  EXPECT_EQ(cache->Access(1, 5000, 1), CacheStatus::kMiss);
  EXPECT_FALSE(cache->Contains(1));
  EXPECT_EQ(cache->stats().rejected, 2u);
  EXPECT_EQ(cache->used_bytes(), 0u);
}

TEST_P(CachePolicyTest, AccountingIsConsistent) {
  auto cache = Make(2048);
  util::Rng rng(9);
  for (int i = 0; i < 3000; ++i) {
    cache->Access(rng.NextBounded(100), 64 + rng.NextBounded(256), i);
  }
  const auto& s = cache->stats();
  EXPECT_EQ(s.hits + s.misses, 3000u);
  EXPECT_EQ(s.inserts, s.misses - s.rejected);
  EXPECT_GE(s.inserts, s.evictions);
}

TEST_P(CachePolicyTest, AdmitWarmsWithoutStats) {
  auto cache = Make(1000);
  EXPECT_TRUE(cache->Admit(5, 100, 0));
  EXPECT_EQ(cache->stats().hits, 0u);
  EXPECT_EQ(cache->stats().misses, 0u);
  EXPECT_EQ(cache->Access(5, 100, 1), CacheStatus::kHit);
}

TEST_P(CachePolicyTest, AdmitRejectsOversized) {
  auto cache = Make(100);
  EXPECT_FALSE(cache->Admit(1, 500, 0));
}

TEST_P(CachePolicyTest, HotObjectSurvivesChurn) {
  // A key accessed between every insertion should stay resident under any
  // recency/frequency-aware policy; FIFO legitimately evicts it, so skip.
  if (GetParam() == PolicyKind::kFifo) GTEST_SKIP();
  auto cache = Make(1000);
  cache->Access(999, 100, 0);
  for (int i = 0; i < 500; ++i) {
    cache->Access(static_cast<std::uint64_t>(i), 100, 2 * i + 1);
    EXPECT_EQ(cache->Access(999, 100, 2 * i + 2), CacheStatus::kHit)
        << "churn round " << i;
  }
}

TEST_P(CachePolicyTest, ZeroCapacityThrows) {
  EXPECT_THROW(CreateCache(GetParam(), 0), std::exception);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CachePolicyTest,
                         ::testing::Values(PolicyKind::kLru, PolicyKind::kFifo,
                                           PolicyKind::kLfu, PolicyKind::kGdsf,
                                           PolicyKind::kS4Lru,
                                           PolicyKind::kTtlLru),
                         [](const auto& info) {
                           return std::string(ToString(info.param)) == "TTL-LRU"
                                      ? "TTLLRU"
                                      : ToString(info.param);
                         });

// --- Direct Insert hardening --------------------------------------------------
// Access/Admit screen oversized objects before Insert, but Insert is the
// policy-layer contract: subclasses and future call sites must get a clean
// rejection (counted in stats().rejected), never an eviction loop that
// drains the cache hunting for space that cannot exist and then throws.

template <typename Policy>
struct OpenInsert : Policy {
  using Policy::Policy;
  using Policy::Insert;  // protected -> public for white-box tests
};

template <typename Policy>
OpenInsert<Policy> MakeOpen(std::uint64_t capacity) {
  return OpenInsert<Policy>(capacity);
}
template <>
OpenInsert<TtlLruCache> MakeOpen<TtlLruCache>(std::uint64_t capacity) {
  return OpenInsert<TtlLruCache>(capacity, /*ttl_ms=*/1000000000LL);
}

template <typename Policy>
class DirectInsertTest : public ::testing::Test {};

using AllPolicyTypes = ::testing::Types<LruCache, FifoCache, LfuCache,
                                        GdsfCache, S4LruCache, TtlLruCache>;
TYPED_TEST_SUITE(DirectInsertTest, AllPolicyTypes);

TYPED_TEST(DirectInsertTest, OversizedInsertRejectedNotFatal) {
  auto cache = MakeOpen<TypeParam>(1000);
  EXPECT_NO_THROW(cache.Insert(1, 5000, 0));
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_EQ(cache.stats().inserts, 0u);
}

TYPED_TEST(DirectInsertTest, OversizedInsertLeavesResidentsAlone) {
  auto cache = MakeOpen<TypeParam>(1000);
  cache.Insert(1, 200, 0);
  cache.Insert(2, 200, 1);
  const bool had1 = cache.Contains(1);
  const bool had2 = cache.Contains(2);
  const std::uint64_t used_before = cache.used_bytes();
  const std::uint64_t evictions_before = cache.stats().evictions;
  // Pre-guard, the eviction loop evicted every resident before giving up;
  // the cache must instead stay exactly as it was.
  EXPECT_NO_THROW(cache.Insert(99, 4000, 2));
  EXPECT_EQ(cache.Contains(1), had1);
  EXPECT_EQ(cache.Contains(2), had2);
  EXPECT_FALSE(cache.Contains(99));
  EXPECT_EQ(cache.used_bytes(), used_before);
  EXPECT_EQ(cache.stats().evictions, evictions_before);
}

TEST(GdsfCacheTest, LazyHeapStaysBounded) {
  // Every hit re-pushes the key with its new priority and strands the old
  // heap item. Without compaction the heap grows with the access count;
  // with it, it stays within a small multiple of the resident set.
  GdsfCache cache(1 << 20);
  constexpr std::uint64_t kKeys = 10;
  for (std::uint64_t k = 0; k < kKeys; ++k) cache.Access(k, 1000, 0);
  for (int round = 0; round < 10000; ++round) {
    cache.Access(static_cast<std::uint64_t>(round) % kKeys, 1000, round + 1);
  }
  EXPECT_EQ(cache.stats().hits, 10000u);
  EXPECT_LE(cache.heap_size(), 2 * kKeys + 16);
}

TEST(GdsfCacheTest, EvictionStillExactAfterCompaction) {
  // Compaction must preserve GDSF's victim choice: a small, hot object
  // outlives a large cold one even after thousands of heap rebuilds.
  GdsfCache cache(10000);
  cache.Access(1, 9000, 0);  // large, cold
  cache.Access(2, 500, 1);   // small...
  for (int i = 0; i < 5000; ++i) cache.Access(2, 500, 2 + i);  // ...and hot
  cache.Access(3, 5000, 9999);  // needs space: the large cold one goes
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(GdsfCacheTest, EqualPriorityEvictionIsDeterministic) {
  // Two residents with identical (size, freq) have bit-identical priorities.
  // HeapItem's total order breaks the tie on key, so the victim is the same
  // whatever the hash-table iteration or heap-rebuild order was: the lowest
  // key goes first.
  GdsfCache cache(2048);
  cache.Access(42, 1024, 0);
  cache.Access(7, 1024, 1);
  cache.Access(99, 1024, 2);  // needs space: evicts exactly one of the ties
  EXPECT_FALSE(cache.Contains(7));
  EXPECT_TRUE(cache.Contains(42));
  EXPECT_TRUE(cache.Contains(99));
}

// --- Policy-specific behaviour ------------------------------------------------

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(300);
  cache.Access(1, 100, 0);
  cache.Access(2, 100, 1);
  cache.Access(3, 100, 2);
  cache.Access(1, 100, 3);  // refresh 1; LRU order now 2 < 3 < 1
  cache.Access(4, 100, 4);  // evicts 2
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
}

TEST(FifoCacheTest, EvictsInInsertionOrderDespiteHits) {
  FifoCache cache(300);
  cache.Access(1, 100, 0);
  cache.Access(2, 100, 1);
  cache.Access(3, 100, 2);
  cache.Access(1, 100, 3);  // hit does NOT refresh position
  cache.Access(4, 100, 4);  // evicts 1 (oldest)
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

TEST(LfuCacheTest, EvictsLeastFrequent) {
  LfuCache cache(300);
  cache.Access(1, 100, 0);
  cache.Access(1, 100, 1);
  cache.Access(1, 100, 2);
  cache.Access(2, 100, 3);
  cache.Access(2, 100, 4);
  cache.Access(3, 100, 5);
  cache.Access(4, 100, 6);  // evicts 3 (freq 1)
  EXPECT_FALSE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

TEST(GdsfCacheTest, PrefersSmallObjectsAtEqualFrequency) {
  GdsfCache cache(10000);
  cache.Access(1, 9000, 0);  // large
  cache.Access(2, 500, 1);   // small
  cache.Access(3, 5000, 2);  // forces eviction: large key 1 should go first
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(GdsfCacheTest, FrequencyCanRescueLargeObjects) {
  GdsfCache cache(10000);
  for (int i = 0; i < 50; ++i) cache.Access(1, 6000, i);  // very hot, large
  cache.Access(2, 3000, 50);
  cache.Access(3, 3000, 51);  // must evict something: not the hot large one
  EXPECT_TRUE(cache.Contains(1));
}

TEST(S4LruCacheTest, PromotedObjectOutlivesScans) {
  S4LruCache cache(4000);  // 1000 per segment
  // Promote key 1 to a higher segment.
  cache.Access(1, 100, 0);
  cache.Access(1, 100, 1);
  cache.Access(1, 100, 2);
  // Scan with one-touch objects: they churn segment 0 only.
  for (int i = 10; i < 100; ++i) cache.Access(static_cast<std::uint64_t>(i), 100, i);
  EXPECT_TRUE(cache.Contains(1));
}

TEST(TtlLruCacheTest, EntriesExpire) {
  TtlLruCache cache(1000, 100);
  EXPECT_EQ(cache.Access(1, 50, 0), CacheStatus::kMiss);
  EXPECT_EQ(cache.Access(1, 50, 50), CacheStatus::kHit);
  // Expired at t=100: miss, and the entry is refreshed on reinsertion.
  EXPECT_EQ(cache.Access(1, 50, 150), CacheStatus::kMiss);
  EXPECT_EQ(cache.Access(1, 50, 200), CacheStatus::kHit);
}

TEST(TtlLruCacheTest, RejectsNonPositiveTtl) {
  EXPECT_THROW(TtlLruCache(1000, 0), std::invalid_argument);
}

TEST(CacheStatsTest, RatiosAndMerge) {
  CacheStats a;
  a.hits = 8;
  a.misses = 2;
  a.hit_bytes = 800;
  a.miss_bytes = 200;
  EXPECT_DOUBLE_EQ(a.HitRatio(), 0.8);
  EXPECT_DOUBLE_EQ(a.ByteHitRatio(), 0.8);
  CacheStats b;
  b.hits = 0;
  b.misses = 10;
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.HitRatio(), 0.4);
  EXPECT_DOUBLE_EQ(CacheStats{}.HitRatio(), 0.0);
}

TEST(CreateCacheTest, NamesMatchKind) {
  for (int k = 0; k < kNumPolicyKinds; ++k) {
    const auto kind = static_cast<PolicyKind>(k);
    EXPECT_EQ(CreateCache(kind, 1 << 20)->name(), ToString(kind));
  }
}

}  // namespace
}  // namespace atlas::cdn
