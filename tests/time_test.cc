#include "util/time.h"

#include <gtest/gtest.h>

namespace atlas::util {
namespace {

TEST(TimeZoneTest, UtcIsZero) {
  EXPECT_EQ(TimeZone::Utc().offset_hours(), 0.0);
  EXPECT_EQ(TimeZone::Utc().offset_millis(), 0);
}

TEST(TimeZoneTest, WholeHourOffsets) {
  const TimeZone tz = TimeZone::FromHours(-8.0);
  EXPECT_DOUBLE_EQ(tz.offset_hours(), -8.0);
  EXPECT_EQ(tz.offset_millis(), -8 * kMillisPerHour);
}

TEST(TimeZoneTest, HalfHourOffset) {
  const TimeZone tz = TimeZone::FromHours(5.5);  // India
  EXPECT_DOUBLE_EQ(tz.offset_hours(), 5.5);
}

TEST(TimeZoneTest, QuarterHourOffset) {
  const TimeZone tz = TimeZone::FromHours(5.75);  // Nepal
  EXPECT_DOUBLE_EQ(tz.offset_hours(), 5.75);
}

TEST(TimeZoneTest, RejectsNonQuarterOffsets) {
  EXPECT_THROW(TimeZone::FromHours(1.1), std::invalid_argument);
  EXPECT_THROW(TimeZone::FromHours(15.0), std::invalid_argument);
  EXPECT_THROW(TimeZone::FromHours(-15.0), std::invalid_argument);
}

TEST(TimeZoneTest, ToLocalShifts) {
  const TimeZone tz = TimeZone::FromHours(2.0);
  EXPECT_EQ(tz.ToLocal(0), 2 * kMillisPerHour);
}

TEST(HourOfDayTest, StartOfTrace) { EXPECT_EQ(HourOfDay(0), 0); }

TEST(HourOfDayTest, MidDay) {
  EXPECT_EQ(HourOfDay(13 * kMillisPerHour + 30 * kMillisPerMinute), 13);
}

TEST(HourOfDayTest, NextDayWraps) {
  EXPECT_EQ(HourOfDay(25 * kMillisPerHour), 1);
}

TEST(HourOfDayTest, NegativeWrapsIntoWeek) {
  // One hour before trace start = Friday 23:00 of the wrapped week.
  EXPECT_EQ(HourOfDay(-kMillisPerHour), 23);
}

TEST(HourOfWeekTest, Boundaries) {
  EXPECT_EQ(HourOfWeek(0), 0);
  EXPECT_EQ(HourOfWeek(kMillisPerWeek - 1), 167);
  EXPECT_EQ(HourOfWeek(kMillisPerWeek), 0);
}

TEST(DayOfWeekTest, SaturdayIsDayZero) {
  EXPECT_EQ(DayOfWeek(0), 0);
  EXPECT_EQ(DayOfWeek(kMillisPerDay), 1);        // Sunday
  EXPECT_EQ(DayOfWeek(6 * kMillisPerDay), 6);    // Friday
  EXPECT_EQ(DayOfWeek(7 * kMillisPerDay), 0);    // wraps to Saturday
}

TEST(FormatTimestampTest, Formats) {
  EXPECT_EQ(FormatTimestamp(0), "Sat 00:00:00");
  EXPECT_EQ(FormatTimestamp(kMillisPerDay + kMillisPerHour +
                            kMillisPerMinute + kMillisPerSecond),
            "Sun 01:01:01");
}

TEST(FormatDurationTest, PicksUnits) {
  EXPECT_EQ(FormatDuration(500), "500 ms");
  EXPECT_EQ(FormatDuration(2500), "2.5 s");
  EXPECT_EQ(FormatDuration(90 * kMillisPerSecond), "1.5 min");
  EXPECT_EQ(FormatDuration(kMillisPerHour * 3 / 2), "1.5 h");
  EXPECT_EQ(FormatDuration(kMillisPerDay * 2), "2.0 d");
}

}  // namespace
}  // namespace atlas::util
