#include "synth/temporal.h"

#include <gtest/gtest.h>

#include <cmath>

namespace atlas::synth {
namespace {

TEST(SiteHourlyDemandTest, PeaksAtConfiguredHour) {
  SiteProfile p = SiteProfile::V1(0.01);
  p.peak_local_hour = 2.0;
  p.diurnal_amplitude = 0.4;
  const double at_peak = SiteHourlyDemand(p, 2.0);
  const double at_trough = SiteHourlyDemand(p, 14.0);
  EXPECT_GT(at_peak, at_trough);
  EXPECT_NEAR(at_peak, 1.4, 1e-9);
  EXPECT_NEAR(at_trough, 0.6, 1e-9);
}

TEST(SiteHourlyDemandTest, AlwaysPositive) {
  SiteProfile p = SiteProfile::V1(0.01);
  p.diurnal_amplitude = 0.99;
  for (double h = 0; h < 24; h += 0.5) {
    EXPECT_GT(SiteHourlyDemand(p, h), 0.0);
  }
}

TEST(WeekHourDistributionTest, SamplesConcentrateAtPeak) {
  SiteProfile p = SiteProfile::V1(0.01);
  p.peak_local_hour = 2.0;
  p.diurnal_amplitude = 0.5;
  WeekHourDistribution dist(p);
  util::Rng rng(3);
  std::array<int, 24> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const std::int64_t ms = dist.SampleLocalMs(rng);
    ASSERT_GE(ms, 0);
    ASSERT_LT(ms, util::kMillisPerWeek);
    ++counts[static_cast<std::size_t>((ms / util::kMillisPerHour) % 24)];
  }
  EXPECT_GT(counts[2], counts[14] * 2);
}

TEST(WeekHourDistributionTest, WeightsCoverAllHours) {
  const SiteProfile p = SiteProfile::P1(0.01);
  WeekHourDistribution dist(p);
  for (int h = 0; h < util::kHoursPerWeek; ++h) {
    EXPECT_GT(dist.WeightOfHour(h), 0.0);
  }
}

TEST(PatternParamsTest, SampleRespectsTypeRanges) {
  util::Rng rng(5);
  const SiteProfile p = SiteProfile::V2(0.01);
  for (int i = 0; i < 200; ++i) {
    const auto long_lived =
        PatternParams::Sample(PatternType::kLongLived, p, rng);
    EXPECT_GE(long_lived.decay_tau_hours, 12.0);
    EXPECT_LE(long_lived.decay_tau_hours, 60.0);
    const auto short_lived =
        PatternParams::Sample(PatternType::kShortLived, p, rng);
    EXPECT_GE(short_lived.decay_tau_hours, 1.0);
    EXPECT_LE(short_lived.decay_tau_hours, 8.0);
    const auto flash = PatternParams::Sample(PatternType::kFlashCrowd, p, rng);
    EXPECT_GE(flash.spike_offset_ms, 0);
    EXPECT_LT(flash.spike_offset_ms, util::kMillisPerWeek);
  }
}

TEST(ObjectDemandMultiplierTest, ZeroBeforeInjection) {
  util::Rng rng(7);
  const SiteProfile p = SiteProfile::V1(0.01);
  const auto params = PatternParams::Sample(PatternType::kDiurnal, p, rng);
  const std::int64_t inject = 2 * util::kMillisPerDay;
  EXPECT_EQ(ObjectDemandMultiplier(params, inject, inject - 1, 0.0), 0.0);
  EXPECT_GT(ObjectDemandMultiplier(params, inject, inject + 1, 0.0), 0.0);
}

TEST(ObjectDemandMultiplierTest, ShortLivedDiesWithinHours) {
  util::Rng rng(9);
  const SiteProfile p = SiteProfile::V1(0.01);
  const auto params = PatternParams::Sample(PatternType::kShortLived, p, rng);
  const double at_start = ObjectDemandMultiplier(params, 0, 0, 0.0);
  const double after_2d =
      ObjectDemandMultiplier(params, 0, 2 * util::kMillisPerDay, 0.0);
  EXPECT_GT(at_start, 1.0);
  EXPECT_LT(after_2d, at_start * 0.01);
}

TEST(ObjectDemandMultiplierTest, LongLivedOutlivesShortLived) {
  util::Rng rng(11);
  const SiteProfile p = SiteProfile::V1(0.01);
  const auto long_lived =
      PatternParams::Sample(PatternType::kLongLived, p, rng);
  const auto short_lived =
      PatternParams::Sample(PatternType::kShortLived, p, rng);
  const std::int64_t t = util::kMillisPerDay;  // one day after injection
  const double long_rel =
      ObjectDemandMultiplier(long_lived, 0, t, 0.0) /
      ObjectDemandMultiplier(long_lived, 0, 0, 0.0);
  const double short_rel =
      ObjectDemandMultiplier(short_lived, 0, t, 0.0) /
      ObjectDemandMultiplier(short_lived, 0, 0, 0.0);
  EXPECT_GT(long_rel, short_rel * 10.0);
}

TEST(ObjectDemandMultiplierTest, FlashCrowdSpikes) {
  util::Rng rng(13);
  const SiteProfile p = SiteProfile::P2(0.01);
  auto params = PatternParams::Sample(PatternType::kFlashCrowd, p, rng);
  params.spike_offset_ms = 3 * util::kMillisPerDay;
  const double before =
      ObjectDemandMultiplier(params, 0, 2 * util::kMillisPerDay, 0.0);
  const double at_spike =
      ObjectDemandMultiplier(params, 0, 3 * util::kMillisPerDay, 0.0);
  EXPECT_LT(before, 0.1);
  EXPECT_GT(at_spike, 5.0);
}

TEST(ObjectDemandMultiplierTest, DiurnalIsPeriodic) {
  util::Rng rng(15);
  const SiteProfile p = SiteProfile::V1(0.01);
  auto params = PatternParams::Sample(PatternType::kDiurnal, p, rng);
  const std::int64_t t0 = util::kMillisPerDay;
  const double day1 = ObjectDemandMultiplier(params, 0, t0, 0.0);
  const double day2 =
      ObjectDemandMultiplier(params, 0, t0 + util::kMillisPerDay, 0.0);
  EXPECT_NEAR(day1, day2, 1e-9);
}

TEST(ObjectDemandCeilingTest, BoundsTheMultiplier) {
  util::Rng rng(17);
  const SiteProfile p = SiteProfile::V2(0.01);
  for (int type = 0; type < kNumPatternTypes; ++type) {
    const auto params =
        PatternParams::Sample(static_cast<PatternType>(type), p, rng);
    const double ceiling = ObjectDemandCeiling(params);
    for (std::int64_t t = 0; t < util::kMillisPerWeek;
         t += util::kMillisPerHour / 4) {
      EXPECT_LE(ObjectDemandMultiplier(params, 0, t, 0.0), ceiling + 1e-9)
          << "type " << type << " t " << t;
    }
  }
}

TEST(ObjectDemandMultiplierTest, WeeklyIntegralsComparableAcrossPatterns) {
  // The design invariant: every pattern type delivers a comparable weekly
  // demand integral (so Zipf weight alone controls total popularity).
  util::Rng rng(19);
  const SiteProfile p = SiteProfile::V2(0.01);
  std::array<double, kNumPatternTypes> integral{};
  const int kSamplesPerType = 40;
  for (int type = 0; type < kNumPatternTypes; ++type) {
    for (int s = 0; s < kSamplesPerType; ++s) {
      const auto params =
          PatternParams::Sample(static_cast<PatternType>(type), p, rng);
      double sum = 0.0;
      for (int h = 0; h < util::kHoursPerWeek; ++h) {
        sum += ObjectDemandMultiplier(
            params, 0, h * util::kMillisPerHour + util::kMillisPerHour / 2,
            0.0);
      }
      integral[static_cast<std::size_t>(type)] += sum / kSamplesPerType;
    }
  }
  for (int type = 0; type < kNumPatternTypes; ++type) {
    EXPECT_GT(integral[static_cast<std::size_t>(type)], 168.0 * 0.4)
        << ToString(static_cast<PatternType>(type));
    EXPECT_LT(integral[static_cast<std::size_t>(type)], 168.0 * 2.5)
        << ToString(static_cast<PatternType>(type));
  }
}

}  // namespace
}  // namespace atlas::synth
