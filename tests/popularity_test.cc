#include "analysis/popularity.h"

#include <gtest/gtest.h>

#include "analysis_fixtures.h"
#include "cdn/simulator.h"

namespace atlas::analysis {
namespace {

using testing::MakeRecord;
using testing::RecordSpec;

TEST(RequestCountsByObjectTest, Counts) {
  trace::TraceBuffer buf;
  for (int i = 0; i < 5; ++i) buf.Add(MakeRecord({.t = i, .url = 1}));
  buf.Add(MakeRecord({.t = 10, .url = 2}));
  const auto counts = RequestCountsByObject(buf);
  EXPECT_EQ(counts.at(1), 5u);
  EXPECT_EQ(counts.at(2), 1u);
}

TEST(PopularityTest, SplitsByClass) {
  trace::TraceBuffer buf;
  for (int i = 0; i < 7; ++i) {
    buf.Add(MakeRecord({.t = i, .url = 1, .type = trace::FileType::kMp4}));
  }
  buf.Add(MakeRecord({.t = 20, .url = 2, .type = trace::FileType::kJpg}));
  buf.Add(MakeRecord({.t = 21, .url = 2, .type = trace::FileType::kJpg}));
  const auto result = ComputePopularity(buf, "X");
  EXPECT_EQ(result.video_counts.count(), 1u);
  EXPECT_DOUBLE_EQ(result.video_counts.Median(), 7.0);
  EXPECT_EQ(result.image_counts.count(), 1u);
  EXPECT_DOUBLE_EQ(result.image_counts.Median(), 2.0);
  EXPECT_EQ(result.all_counts.count(), 2u);
}

TEST(PopularityTest, SingletonFraction) {
  trace::TraceBuffer buf;
  buf.Add(MakeRecord({.t = 0, .url = 1}));
  buf.Add(MakeRecord({.t = 1, .url = 2}));
  buf.Add(MakeRecord({.t = 2, .url = 2}));
  const auto result = ComputePopularity(buf, "X");
  EXPECT_DOUBLE_EQ(result.SingletonFraction(), 0.5);
}

TEST(PopularityTest, SkewMetricsOnUniformDemand) {
  trace::TraceBuffer buf;
  for (std::uint64_t obj = 1; obj <= 20; ++obj) {
    for (int i = 0; i < 10; ++i) {
      buf.Add(MakeRecord({.t = static_cast<std::int64_t>(obj * 100 + i),
                          .url = obj}));
    }
  }
  const auto result = ComputePopularity(buf, "X");
  EXPECT_NEAR(result.gini, 0.0, 1e-9);
  EXPECT_NEAR(result.top10_share, 0.1, 1e-9);
}

// Closed loop (Fig. 6): Zipf demand yields long-tailed counts — high top-10%
// share, positive Gini, and a power-law-ish tail.
TEST(PopularityClosedLoopTest, LongTailRecovered) {
  cdn::SimulatorConfig config;
  const auto sim = cdn::SimulateSite(synth::SiteProfile::V1(0.02), 0, config, 5);
  const auto result = ComputePopularity(sim.trace, "V-1");
  EXPECT_GT(result.top10_share, 0.4);
  EXPECT_GT(result.gini, 0.5);
  EXPECT_GT(result.power_law.alpha, 1.2);
  EXPECT_LT(result.power_law.ks, 0.25);
}

}  // namespace
}  // namespace atlas::analysis
