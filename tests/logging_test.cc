#include "util/logging.h"

#include <gtest/gtest.h>

#include <sstream>

namespace atlas::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogSink(&sink_);
    SetLogLevel(LogLevel::kInfo);
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetLogLevel(LogLevel::kInfo);
  }
  std::ostringstream sink_;
};

TEST_F(LoggingTest, EmitsAtOrAboveLevel) {
  ATLAS_LOG(kInfo) << "hello " << 42;
  EXPECT_NE(sink_.str().find("hello 42"), std::string::npos);
  EXPECT_NE(sink_.str().find("INFO"), std::string::npos);
}

TEST_F(LoggingTest, SuppressesBelowLevel) {
  ATLAS_LOG(kDebug) << "should not appear";
  EXPECT_TRUE(sink_.str().empty());
}

TEST_F(LoggingTest, LevelChangeTakesEffect) {
  SetLogLevel(LogLevel::kError);
  ATLAS_LOG(kWarn) << "suppressed";
  EXPECT_TRUE(sink_.str().empty());
  ATLAS_LOG(kError) << "emitted";
  EXPECT_NE(sink_.str().find("emitted"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  SetLogLevel(LogLevel::kOff);
  ATLAS_LOG(kError) << "nope";
  EXPECT_TRUE(sink_.str().empty());
}

TEST(LogLevelNameTest, Names) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kOff), "OFF");
}

}  // namespace
}  // namespace atlas::util
