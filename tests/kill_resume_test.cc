// Crash-consistency property of the checkpointed pipeline (ckpt/, engine.h):
// a run that checkpoints every epoch, dies, and resumes from its snapshot
// produces a merged v2 trace byte-identical to an uninterrupted run — at
// any thread count, at any kill point, even when the crash tears the tail
// of the output file. The analysis suite holds the same property through
// StreamingAnalysis save/restore: the resumed report is character-identical.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "analysis/suite.h"
#include "cdn/engine.h"
#include "cdn/scenario.h"
#include "ckpt/checkpoint.h"
#include "scenario_fixtures.h"
#include "synth/site_profile.h"
#include "trace/block.h"
#include "trace/sink.h"
#include "trace/stream.h"
#include "util/hash.h"
#include "util/logging.h"

namespace atlas {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};
// Barrier counts to die at: right after the first snapshot, mid-run, and
// near the end of the simulated week (168 hourly epochs).
constexpr std::uint64_t kKillBarriers[] = {1, 60, 150};

// Pinned FNV-1a digest of the complete v2 output for the golden scenario
// below (PaperAdultSites 0.01, seed 42, peer fill + push). Every resumed
// run must reproduce these bytes exactly; if this moves, resume is no
// longer crash-consistent (or the generator/simulator changed — say which
// in the commit message).
constexpr std::uint64_t kGoldenV2Digest = 0xef475dbcd9a33c2dULL;
constexpr std::uint64_t kGoldenRecords = 53664;

cdn::SimulatorConfig GoldenConfig() {
  cdn::SimulatorConfig config;
  config.topology.edge_capacity_bytes = 256ULL << 20;
  config.peer_fill = true;
  config.push.enabled = true;
  config.push.top_n = 100;
  return config;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::uint64_t SimulateToFile(const std::string& path, int threads) {
  std::ofstream out(path, std::ios::binary);
  trace::TraceWriter writer(out);
  trace::WriterSink sink(writer);
  cdn::StreamScenario(synth::SiteProfile::PaperAdultSites(0.01),
                      GoldenConfig(), 42, sink, threads);
  writer.Finish();
  return writer.written();
}

// Runs with a snapshot every epoch and "dies" (in-process) right after the
// snapshot at `kill_barrier` commits — the writer is never Finished, as in
// a real crash. Then tears the file's tail with garbage, as a crash during
// a block write would.
void KilledRun(const std::string& path, const std::string& ckpt_path,
               int threads, std::uint64_t kill_barrier) {
  {
    std::ofstream out(path, std::ios::binary);
    trace::TraceWriter writer(out);
    trace::WriterSink sink(writer);
    cdn::CheckpointOptions opts;
    opts.every_epochs = 1;
    opts.path = ckpt_path;
    opts.save_extra = [&](ckpt::Writer& w) { writer.SaveState(w); };
    opts.after_save = [kill_barrier](std::uint64_t done) {
      return done < kill_barrier;
    };
    cdn::StreamScenario(synth::SiteProfile::PaperAdultSites(0.01),
                        GoldenConfig(), 42, sink, threads, opts);
  }
  std::ofstream torn(path, std::ios::binary | std::ios::app);
  torn << "TORN-TAIL-GARBAGE";
}

std::uint64_t ResumeRun(const std::string& path, const std::string& ckpt_path,
                        int threads) {
  auto snapshot = ckpt::ReadCheckpointFile(ckpt_path);
  trace::ResumedTraceFile resumed(path, snapshot);
  trace::WriterSink sink(resumed.writer());
  cdn::CheckpointOptions opts;
  opts.resume = &snapshot;
  cdn::StreamScenario(synth::SiteProfile::PaperAdultSites(0.01),
                      GoldenConfig(), 42, sink, threads, opts);
  resumed.writer().Finish();
  return resumed.writer().written();
}

TEST(KillResumeTest, ResumedRunsAreByteIdenticalAtAnyThreadAndKillPoint) {
  util::SetLogLevel(util::LogLevel::kWarn);
  const std::string golden_path = ::testing::TempDir() + "/atlas_kr_golden.v2";
  ASSERT_EQ(SimulateToFile(golden_path, 1), kGoldenRecords);
  const std::string golden = ReadFileBytes(golden_path);
  ASSERT_EQ(util::Fnv1a64(golden), kGoldenV2Digest);

  for (const int threads : kThreadCounts) {
    for (const std::uint64_t kill : kKillBarriers) {
      const std::string tag =
          "_t" + std::to_string(threads) + "_k" + std::to_string(kill);
      const std::string path =
          ::testing::TempDir() + "/atlas_kr" + tag + ".v2";
      const std::string ckpt_path =
          ::testing::TempDir() + "/atlas_kr" + tag + ".ckpt";

      KilledRun(path, ckpt_path, threads, kill);

      // The torn file must be detected as corrupt before recovery...
      const auto scan = trace::ScanV2File(path);
      EXPECT_FALSE(scan.error.empty())
          << "torn tail not detected (threads=" << threads << ", kill="
          << kill << ")";
      EXPECT_LT(scan.valid_records, kGoldenRecords);

      // ...and recovery + resume must reproduce the golden bytes exactly.
      EXPECT_EQ(ResumeRun(path, ckpt_path, threads), kGoldenRecords);
      const std::string resumed = ReadFileBytes(path);
      EXPECT_EQ(util::Fnv1a64(resumed), kGoldenV2Digest)
          << "threads=" << threads << ", kill=" << kill;
      EXPECT_EQ(resumed, golden);

      std::remove(path.c_str());
      std::remove(ckpt_path.c_str());
    }
  }
  std::remove(golden_path.c_str());
}

TEST(KillResumeTest, ResumeWithDifferentSeedFailsClearly) {
  util::SetLogLevel(util::LogLevel::kWarn);
  const std::string path = ::testing::TempDir() + "/atlas_kr_seed.v2";
  const std::string ckpt_path = ::testing::TempDir() + "/atlas_kr_seed.ckpt";
  KilledRun(path, ckpt_path, 2, 1);

  auto snapshot = ckpt::ReadCheckpointFile(ckpt_path);
  trace::ResumedTraceFile resumed(path, snapshot);
  trace::WriterSink sink(resumed.writer());
  cdn::CheckpointOptions opts;
  opts.resume = &snapshot;
  try {
    cdn::StreamScenario(synth::SiteProfile::PaperAdultSites(0.01),
                        GoldenConfig(), 43, sink, 2, opts);
    FAIL() << "seed mismatch not detected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("scenario mismatch"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
  std::remove(ckpt_path.c_str());
}

TEST(KillResumeTest, ResumeWithDifferentConfigFailsClearly) {
  util::SetLogLevel(util::LogLevel::kWarn);
  const std::string path = ::testing::TempDir() + "/atlas_kr_cfg.v2";
  const std::string ckpt_path = ::testing::TempDir() + "/atlas_kr_cfg.ckpt";
  KilledRun(path, ckpt_path, 2, 1);

  auto snapshot = ckpt::ReadCheckpointFile(ckpt_path);
  trace::ResumedTraceFile resumed(path, snapshot);
  trace::WriterSink sink(resumed.writer());
  cdn::CheckpointOptions opts;
  opts.resume = &snapshot;
  auto config = GoldenConfig();
  config.peer_fill = false;  // not the workload the snapshot was taken with
  try {
    cdn::StreamScenario(synth::SiteProfile::PaperAdultSites(0.01), config, 42,
                        sink, 2, opts);
    FAIL() << "config mismatch not detected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint mismatch"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
  std::remove(ckpt_path.c_str());
}

// The analysis-side half of the property: interrupting a streaming analysis
// pass, checkpointing it, and restoring into a fresh StreamingAnalysis must
// render a report character-identical to an uninterrupted pass.
TEST(KillResumeTest, StreamingAnalysisSaveRestoreReproducesReport) {
  util::SetLogLevel(util::LogLevel::kWarn);
  const cdn::Scenario scenario(synth::SiteProfile::PaperAdultSites(0.004),
                               GoldenConfig(), 11, 2);
  const trace::TraceBuffer merged = testutil::MaterializeMerged(scenario);
  ASSERT_GT(merged.size(), 1000u);

  analysis::SuiteConfig config;
  config.threads = 2;

  // Uninterrupted pass.
  std::string golden_report;
  {
    trace::BufferSource source(merged);
    analysis::AnalysisSuite suite(source, scenario.registry(), config);
    std::ostringstream out;
    suite.Render(out);
    golden_report = out.str();
  }

  // Interrupted pass: consume half, checkpoint, restore into a fresh
  // analysis, feed the rest from the cursor onward.
  const std::string ckpt_path = ::testing::TempDir() + "/atlas_kr_suite.ckpt";
  {
    analysis::StreamingAnalysis first(scenario.registry(), config);
    trace::BufferSource source(merged);
    const std::uint64_t half = merged.size() / 2;
    for (auto chunk = source.NextChunk();
         !chunk.empty() && first.records_consumed() < half;
         chunk = source.NextChunk()) {
      first.AddChunk(chunk);
    }
    ckpt::WriteCheckpointFile(ckpt_path, [&](ckpt::Writer& w) {
      w.BeginSection("analysis.suite", 1);
      first.SaveState(w);
      w.EndSection();
    });
  }
  analysis::StreamingAnalysis second(scenario.registry(), config);
  {
    auto snapshot = ckpt::ReadCheckpointFile(ckpt_path);
    snapshot.BeginSection("analysis.suite", 1);
    second.RestoreState(snapshot);
    snapshot.EndSection();
  }
  std::uint64_t skip = second.records_consumed();
  EXPECT_GT(skip, 0u);
  {
    trace::BufferSource source(merged);
    for (auto chunk = source.NextChunk(); !chunk.empty();
         chunk = source.NextChunk()) {
      auto rest = chunk;
      if (skip > 0) {
        const auto drop = std::min<std::uint64_t>(skip, rest.size());
        rest = rest.subspan(static_cast<std::size_t>(drop));
        skip -= drop;
      }
      if (!rest.empty()) second.AddChunk(rest);
    }
  }
  EXPECT_EQ(second.records_consumed(), merged.size());
  analysis::AnalysisSuite resumed_suite(second.Finalize());
  std::ostringstream out;
  resumed_suite.Render(out);
  EXPECT_EQ(out.str(), golden_report);
  std::remove(ckpt_path.c_str());
}

// Same property on the SoA batch path: consume blocks, checkpoint, restore
// into a fresh analysis, and resume with a *different* block size so the
// cursor lands mid-block — AddBlock's first_row skip must consume exactly
// the unseen suffix. The resumed report must be character-identical.
TEST(KillResumeTest, BatchStreamingAnalysisSaveRestoreReproducesReport) {
  util::SetLogLevel(util::LogLevel::kWarn);
  const cdn::Scenario scenario(synth::SiteProfile::PaperAdultSites(0.004),
                               GoldenConfig(), 11, 2);
  const trace::TraceBuffer merged = testutil::MaterializeMerged(scenario);
  ASSERT_GT(merged.size(), 1000u);

  analysis::SuiteConfig config;
  config.threads = 2;

  // Uninterrupted pass, block path.
  std::string golden_report;
  {
    trace::BufferBlockSource source(merged, /*block_records=*/512);
    analysis::AnalysisSuite suite(source, scenario.registry(), config);
    std::ostringstream out;
    suite.Render(out);
    golden_report = out.str();
  }

  const std::string ckpt_path =
      ::testing::TempDir() + "/atlas_kr_batch_suite.ckpt";
  {
    analysis::StreamingAnalysis first(scenario.registry(), config);
    trace::BufferBlockSource source(merged, /*block_records=*/512);
    const std::uint64_t half = merged.size() / 2;
    for (const auto* block = source.NextBlock();
         block != nullptr && first.records_consumed() < half;
         block = source.NextBlock()) {
      first.AddBlock(*block);
    }
    ckpt::WriteCheckpointFile(ckpt_path, [&](ckpt::Writer& w) {
      w.BeginSection("analysis.suite", 1);
      first.SaveState(w);
      w.EndSection();
    });
  }

  analysis::StreamingAnalysis second(scenario.registry(), config);
  {
    auto snapshot = ckpt::ReadCheckpointFile(ckpt_path);
    snapshot.BeginSection("analysis.suite", 1);
    second.RestoreState(snapshot);
    snapshot.EndSection();
  }
  std::uint64_t skip = second.records_consumed();
  EXPECT_GT(skip, 0u);
  // 384 does not divide the 512-aligned cursor, so the resume point falls
  // inside a block and first_row does real work.
  EXPECT_NE(skip % 384, 0u);
  {
    trace::BufferBlockSource source(merged, /*block_records=*/384);
    for (const auto* block = source.NextBlock(); block != nullptr;
         block = source.NextBlock()) {
      if (skip >= block->size()) {
        skip -= block->size();
        continue;
      }
      second.AddBlock(*block, static_cast<std::size_t>(skip));
      skip = 0;
    }
  }
  EXPECT_EQ(second.records_consumed(), merged.size());
  analysis::AnalysisSuite resumed_suite(second.Finalize());
  std::ostringstream out;
  resumed_suite.Render(out);
  EXPECT_EQ(out.str(), golden_report);
  std::remove(ckpt_path.c_str());
}

// The simulator-side batch path: the engine streams its merged trace
// through the SoA packer into the v2 writer, checkpoints every epoch,
// "dies", tears the tail, and resumes — the recovered file must reproduce
// the golden bytes exactly. The packer flushes inside the snapshot commit,
// so no merged record is ever buffered outside the captured state.
TEST(KillResumeTest, BlockSinkRunResumesToGoldenBytes) {
  util::SetLogLevel(util::LogLevel::kWarn);
  const std::string path = ::testing::TempDir() + "/atlas_kr_batch.v2";
  const std::string ckpt_path = ::testing::TempDir() + "/atlas_kr_batch.ckpt";
  constexpr int kThreads = 2;
  constexpr std::uint64_t kKill = 60;

  {
    std::ofstream out(path, std::ios::binary);
    trace::TraceWriter writer(out);
    trace::WriterBlockSink block_sink(writer);
    trace::PerRecordSink packer(block_sink);
    cdn::CheckpointOptions opts;
    opts.every_epochs = 1;
    opts.path = ckpt_path;
    opts.save_extra = [&](ckpt::Writer& w) {
      packer.Flush();  // every merged record reaches the writer's state
      writer.SaveState(w);
    };
    opts.after_save = [](std::uint64_t done) { return done < kKill; };
    cdn::StreamScenario(synth::SiteProfile::PaperAdultSites(0.01),
                        GoldenConfig(), 42, packer, kThreads, opts);
  }
  std::ofstream torn(path, std::ios::binary | std::ios::app);
  torn << "TORN-TAIL-GARBAGE";
  torn.close();

  auto snapshot = ckpt::ReadCheckpointFile(ckpt_path);
  trace::ResumedTraceFile resumed(path, snapshot);
  trace::WriterBlockSink block_sink(resumed.writer());
  trace::PerRecordSink packer(block_sink);
  cdn::CheckpointOptions opts;
  opts.resume = &snapshot;
  cdn::StreamScenario(synth::SiteProfile::PaperAdultSites(0.01),
                      GoldenConfig(), 42, packer, kThreads, opts);
  packer.Flush();
  resumed.writer().Finish();
  EXPECT_EQ(resumed.writer().written(), kGoldenRecords);
  EXPECT_EQ(util::Fnv1a64(ReadFileBytes(path)), kGoldenV2Digest);

  std::remove(path.c_str());
  std::remove(ckpt_path.c_str());
}

// Lazy-shard runs are crash-consistent too — and the synth-table budget is
// a pure execution knob, deliberately excluded from the scenario
// fingerprint: a run killed with its tables forced into lazy RNG-snapshot
// shards resumes against a *resident* reconstruction (and vice versa) and
// still reproduces the golden bytes exactly.
TEST(KillResumeTest, LazyShardRunResumesAcrossBudgetsToGoldenBytes) {
  util::SetLogLevel(util::LogLevel::kWarn);
  constexpr int kThreads = 2;
  constexpr std::uint64_t kKill = 60;
  // {budget at kill, budget at resume}: lazy->resident and resident->lazy.
  constexpr std::uint64_t kLazyBudget = 1u << 16;
  constexpr std::uint64_t kResidentBudget = 256ULL << 20;
  const std::uint64_t budget_pairs[][2] = {
      {kLazyBudget, kResidentBudget},
      {kResidentBudget, kLazyBudget},
  };

  for (const auto& budgets : budget_pairs) {
    const std::string tag = budgets[0] == kLazyBudget ? "_l2r" : "_r2l";
    const std::string path = ::testing::TempDir() + "/atlas_kr_lazy" + tag + ".v2";
    const std::string ckpt_path =
        ::testing::TempDir() + "/atlas_kr_lazy" + tag + ".ckpt";

    auto sites = synth::SiteProfile::PaperAdultSites(0.01);
    {
      for (auto& site : sites) site.synth_table_budget_bytes = budgets[0];
      std::ofstream out(path, std::ios::binary);
      trace::TraceWriter writer(out);
      trace::WriterSink sink(writer);
      cdn::CheckpointOptions opts;
      opts.every_epochs = 1;
      opts.path = ckpt_path;
      opts.save_extra = [&](ckpt::Writer& w) { writer.SaveState(w); };
      opts.after_save = [](std::uint64_t done) { return done < kKill; };
      cdn::StreamScenario(sites, GoldenConfig(), 42, sink, kThreads, opts);
    }
    std::ofstream torn(path, std::ios::binary | std::ios::app);
    torn << "TORN-TAIL-GARBAGE";
    torn.close();

    for (auto& site : sites) site.synth_table_budget_bytes = budgets[1];
    auto snapshot = ckpt::ReadCheckpointFile(ckpt_path);
    trace::ResumedTraceFile resumed(path, snapshot);
    trace::WriterSink sink(resumed.writer());
    cdn::CheckpointOptions opts;
    opts.resume = &snapshot;
    cdn::StreamScenario(sites, GoldenConfig(), 42, sink, kThreads, opts);
    resumed.writer().Finish();
    EXPECT_EQ(resumed.writer().written(), kGoldenRecords) << tag;
    EXPECT_EQ(util::Fnv1a64(ReadFileBytes(path)), kGoldenV2Digest) << tag;

    std::remove(path.c_str());
    std::remove(ckpt_path.c_str());
  }
}

}  // namespace
}  // namespace atlas
