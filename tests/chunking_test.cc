#include "cdn/chunking.h"

#include <gtest/gtest.h>

#include <cmath>

namespace atlas::cdn {
namespace {

TEST(PlanChunksTest, SmallObjectSingle200) {
  const auto plan = PlanChunks(1000, 1.0, 4096);
  EXPECT_EQ(plan.num_chunks, 1u);
  EXPECT_EQ(plan.chunk_bytes, 1000u);
  EXPECT_FALSE(plan.partial);
}

TEST(PlanChunksTest, FullWatchSplitsExactly) {
  const auto plan = PlanChunks(10000, 1.0, 2500);
  EXPECT_EQ(plan.num_chunks, 4u);
  EXPECT_EQ(plan.chunk_bytes, 2500u);
  EXPECT_EQ(plan.last_chunk_bytes, 2500u);
  EXPECT_TRUE(plan.partial);
}

TEST(PlanChunksTest, PartialWatchTruncates) {
  const auto plan = PlanChunks(10000, 0.55, 2500);
  // 5500 watched bytes -> 3 chunks, last one 500.
  EXPECT_EQ(plan.num_chunks, 3u);
  EXPECT_EQ(plan.last_chunk_bytes, 500u);
  EXPECT_TRUE(plan.partial);
}

TEST(PlanChunksTest, TinyWatchFractionStillOneChunk) {
  const auto plan = PlanChunks(10000, 0.001, 2500);
  EXPECT_EQ(plan.num_chunks, 1u);
  EXPECT_GE(plan.last_chunk_bytes, 1u);
}

TEST(PlanChunksTest, ChunkingDisabled) {
  const auto plan = PlanChunks(1 << 30, 0.5, 0);
  EXPECT_EQ(plan.num_chunks, 1u);
  EXPECT_TRUE(plan.partial);  // half the file via one range response
  EXPECT_EQ(plan.chunk_bytes, (1u << 30) / 2);
}

TEST(PlanChunksTest, WatchFractionClamped) {
  const auto over = PlanChunks(1000, 5.0, 0);
  EXPECT_EQ(over.chunk_bytes, 1000u);
  EXPECT_FALSE(over.partial);
  const auto under = PlanChunks(1000, -1.0, 0);
  EXPECT_GE(under.chunk_bytes, 1u);
}

TEST(PlanChunksTest, ZeroSizeObjectSafe) {
  const auto plan = PlanChunks(0, 1.0, 100);
  EXPECT_EQ(plan.num_chunks, 1u);
  EXPECT_GE(plan.chunk_bytes, 1u);
}

TEST(PlanChunksTest, TotalBytesMatchWatchedAmount) {
  for (std::uint64_t size : {5000ULL, 123457ULL, 10000000ULL}) {
    for (double watch : {0.1, 0.37, 0.9, 1.0}) {
      const auto plan = PlanChunks(size, watch, 4096);
      const std::uint64_t total =
          (plan.num_chunks - 1) * plan.chunk_bytes + plan.last_chunk_bytes;
      const auto expected = static_cast<std::uint64_t>(
          std::ceil(static_cast<double>(size) * watch));
      EXPECT_EQ(total, std::max<std::uint64_t>(expected, 1))
          << size << " @ " << watch;
    }
  }
}

TEST(ChunkKeyTest, ChunkZeroIsObjectHash) {
  EXPECT_EQ(ChunkKey(12345, 0), 12345u);
}

TEST(ChunkKeyTest, DistinctPerChunkAndObject) {
  EXPECT_NE(ChunkKey(1, 1), ChunkKey(1, 2));
  EXPECT_NE(ChunkKey(1, 1), ChunkKey(2, 1));
  EXPECT_EQ(ChunkKey(7, 3), ChunkKey(7, 3));
}

}  // namespace
}  // namespace atlas::cdn
