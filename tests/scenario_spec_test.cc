// The declarative scenario engine end to end: every shipped scenario file
// under scenarios/ reproduces its pinned golden digest at 1/2/8 threads,
// each operational event produces its claimed effect in the trace,
// malformed spec files fail loudly with positions, the canonical form
// round-trips byte-exactly, and a checkpointed spec run refuses to resume
// against a mutated spec.
#include "cdn/scenario_spec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cdn/engine.h"
#include "cdn/scenario.h"
#include "ckpt/checkpoint.h"
#include "scenario_fixtures.h"
#include "synth/catalog.h"
#include "synth/workload.h"
#include "synth/site_profile.h"
#include "trace/sink.h"
#include "trace/stream.h"
#include "trace/trace_buffer.h"
#include "util/config.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/time.h"

namespace atlas {
namespace {

using util::config::ConfigError;

constexpr int kThreadCounts[] = {1, 2, 8};

// Pinned FNV-1a digests of the complete v2 output for every scenario file
// shipped under scenarios/. paper_study matches kGoldenV2Digest in
// kill_resume_test.cc by construction: the spec is the declarative twin of
// that test's golden config. If a digest moves, either the file changed or
// the generator/engine changed — say which in the commit message.
struct GoldenScenario {
  const char* file;
  std::uint64_t digest;
  std::uint64_t records;
};
constexpr GoldenScenario kGoldenScenarios[] = {
    {"paper_study.toml", 0xef475dbcd9a33c2dULL, 53664},
    {"flash_crowd.toml", 0x46f44269337038c8ULL, 16410},
    {"takedown.toml", 0xf8ec9a7a9514ef6fULL, 14957},
    {"dc_outage.toml", 0xf73728864137927aULL, 17597},
    {"cache_flush.toml", 0xded9a1d09f02cba8ULL, 15766},
    {"live_event.toml", 0x8bcb964a1d3a3ef7ULL, 5925},
};

std::string SpecPath(const std::string& name) {
  return std::string(ATLAS_SOURCE_DIR) + "/scenarios/" + name;
}

struct SpecRun {
  std::string bytes;
  std::uint64_t records = 0;
  cdn::ScenarioStreamResult result;
};

SpecRun RunSpec(const cdn::ScenarioSpec& spec, int threads) {
  std::ostringstream out;
  trace::TraceWriter writer(out);
  trace::WriterSink sink(writer);
  SpecRun run;
  run.result = cdn::StreamScenario(spec, sink, threads);
  writer.Finish();
  run.bytes = out.str();
  run.records = writer.written();
  return run;
}

trace::TraceBuffer MaterializeSpec(const cdn::ScenarioSpec& spec,
                                   int threads = 2) {
  trace::TraceBuffer out;
  trace::BufferSink sink(out);
  cdn::StreamScenario(spec, sink, threads);
  return out;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Most-requested url for one publisher within [from_ms, to_ms), plus its
// share of that publisher's in-window requests.
struct ModalUrl {
  std::uint64_t url = 0;
  std::uint64_t count = 0;
  std::uint64_t total = 0;
  double Share() const {
    return total == 0 ? 0.0
                      : static_cast<double>(count) / static_cast<double>(total);
  }
};

ModalUrl ModalUrlInWindow(const trace::TraceBuffer& trace, std::uint32_t pub,
                          std::int64_t from_ms, std::int64_t to_ms) {
  std::map<std::uint64_t, std::uint64_t> counts;
  ModalUrl modal;
  for (const auto& r : trace.records()) {
    if (r.publisher_id != pub) continue;
    if (r.timestamp_ms < from_ms || r.timestamp_ms >= to_ms) continue;
    ++modal.total;
    const std::uint64_t c = ++counts[r.url_hash];
    if (c > modal.count) {
      modal.count = c;
      modal.url = r.url_hash;
    }
  }
  return modal;
}

double HitRatioInWindow(const trace::TraceBuffer& trace, std::int64_t from_ms,
                        std::int64_t to_ms) {
  std::uint64_t hits = 0, total = 0;
  for (const auto& r : trace.records()) {
    if (r.timestamp_ms < from_ms || r.timestamp_ms >= to_ms) continue;
    ++total;
    if (r.cache_status == trace::CacheStatus::kHit) ++hits;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

class ScenarioSpecTest : public ::testing::Test {
 protected:
  void SetUp() override { util::SetLogLevel(util::LogLevel::kWarn); }
  void TearDown() override { util::SetLogLevel(util::LogLevel::kInfo); }
};

// ---------------------------------------------------------------------------
// Golden digests: every shipped scenario, every thread count.

TEST_F(ScenarioSpecTest, EveryShippedScenarioReproducesItsGoldenDigest) {
  for (const auto& golden : kGoldenScenarios) {
    const auto spec = cdn::ScenarioSpec::ParseFile(SpecPath(golden.file));
    for (const int threads : kThreadCounts) {
      const SpecRun run = RunSpec(spec, threads);
      EXPECT_EQ(run.records, golden.records)
          << golden.file << " threads=" << threads;
      EXPECT_EQ(util::Fnv1a64(run.bytes), golden.digest)
          << golden.file << " threads=" << threads;
    }
  }
}

TEST_F(ScenarioSpecTest, PaperStudySpecMatchesHardcodedPaperStudy) {
  // The declarative twin produces the same bytes as the constructor
  // pipeline it replaced (same profiles, config, seed).
  const auto spec =
      cdn::ScenarioSpec::ParseFile(SpecPath("paper_study.toml"));
  cdn::SimulatorConfig config;
  config.topology.edge_capacity_bytes = 256ULL << 20;
  config.peer_fill = true;
  config.push.enabled = true;
  config.push.top_n = 100;
  std::ostringstream out;
  trace::TraceWriter writer(out);
  trace::WriterSink sink(writer);
  cdn::StreamScenario(synth::SiteProfile::PaperAdultSites(0.01), config, 42,
                      sink, 2);
  writer.Finish();
  const SpecRun run = RunSpec(spec, 2);
  EXPECT_EQ(run.bytes, out.str());
}

// ---------------------------------------------------------------------------
// Event semantics: each scenario's claimed effect is visible in its trace.

TEST_F(ScenarioSpecTest, FlashCrowdConcentratesInWindowDemand) {
  const auto spec =
      cdn::ScenarioSpec::ParseFile(SpecPath("flash_crowd.toml"));
  const auto trace = MaterializeSpec(spec);
  // V-1 is the first [[site]], publisher id 0; the event window is hours
  // 50-56 with share 0.6: the modal object must dominate in-window and be
  // an ordinary Zipf head outside it.
  const auto in_window = ModalUrlInWindow(trace, 0, 50 * util::kMillisPerHour,
                                          56 * util::kMillisPerHour);
  const auto before = ModalUrlInWindow(trace, 0, 0, 50 * util::kMillisPerHour);
  ASSERT_GT(in_window.total, 100u);
  EXPECT_GT(in_window.Share(), 0.45);
  EXPECT_LT(before.Share(), 0.30);
}

TEST_F(ScenarioSpecTest, TakedownRemovesTheObjectInWindow) {
  const auto spec = cdn::ScenarioSpec::ParseFile(SpecPath("takedown.toml"));
  cdn::ScenarioSpec without = spec;
  without.events.clear();
  // Ground truth: the taken-down url is catalog object 0 of the first (and
  // only) site, read straight from the generator the scenario keeps alive.
  const cdn::Scenario scenario(spec, 2);
  const std::uint64_t taken_down =
      scenario.run(0).generator->catalog().object(0).url_hash;
  const auto trace = testutil::MaterializeMerged(scenario);
  const auto baseline = MaterializeSpec(without);
  auto count = [taken_down](const trace::TraceBuffer& t, bool in_window) {
    std::uint64_t n = 0;
    for (const auto& r : t.records()) {
      if (r.publisher_id != 0 || r.url_hash != taken_down) continue;
      if ((r.timestamp_ms >= 72 * util::kMillisPerHour) == in_window) ++n;
    }
    return n;
  };
  // Without the event the object keeps drawing requests all week; with it,
  // demand vanishes at hour 72 (redirected to the catalog neighbour) while
  // the pre-window demand is byte-identical.
  ASSERT_GT(count(baseline, true), 0u)
      << "object 0 draws no organic demand after hour 72 — dead test";
  EXPECT_EQ(count(trace, true), 0u)
      << "taken-down object still requested after hour 72";
  EXPECT_EQ(count(trace, false), count(baseline, false))
      << "takedown changed demand before its window opened";
}

TEST_F(ScenarioSpecTest, DcOutageShiftsTrafficToFailoverDc) {
  const auto spec = cdn::ScenarioSpec::ParseFile(SpecPath("dc_outage.toml"));
  cdn::ScenarioSpec without = spec;
  without.events.clear();
  const SpecRun outage = RunSpec(spec, 2);
  const SpecRun baseline = RunSpec(without, 2);

  // The demand timeline is untouched, but delivery is not byte-invariant:
  // requests rerouted to the failover DC hit different cache state, so
  // revalidations that would have been 304s at the home DC can come back as
  // full 200s (and vice versa). Record counts therefore drift by a handful,
  // not by orders of magnitude.
  const auto drift = outage.records > baseline.records
                         ? outage.records - baseline.records
                         : baseline.records - outage.records;
  EXPECT_LT(drift, baseline.records / 100)
      << "outage=" << outage.records << " baseline=" << baseline.records;

  // DC 0 serves nothing for 12 of 168 hours; those requests land on DC 1.
  auto dc_requests = [](const cdn::ScenarioStreamResult& r, std::size_t dc) {
    std::uint64_t total = 0;
    for (const auto& site : r.site_results) {
      total += site.per_dc_stats[dc].hits + site.per_dc_stats[dc].misses;
    }
    return total;
  };
  EXPECT_LT(dc_requests(outage.result, 0), dc_requests(baseline.result, 0));
  EXPECT_GT(dc_requests(outage.result, 1), dc_requests(baseline.result, 1));
}

TEST_F(ScenarioSpecTest, CacheFlushDropsHitRatioAfterTheFlush) {
  const auto spec =
      cdn::ScenarioSpec::ParseFile(SpecPath("cache_flush.toml"));
  const auto trace = MaterializeSpec(spec);
  // Warm caches just before hour 84, cold caches just after.
  const double warm = HitRatioInWindow(trace, 80 * util::kMillisPerHour,
                                       84 * util::kMillisPerHour);
  const double cold = HitRatioInWindow(trace, 84 * util::kMillisPerHour,
                                       88 * util::kMillisPerHour);
  EXPECT_GT(warm, cold + 0.05)
      << "warm=" << warm << " cold=" << cold
      << " (flush at hour 84 did not cool the caches)";
}

TEST_F(ScenarioSpecTest, LiveEventConcentratesTheHeadlineStream) {
  const auto spec = cdn::ScenarioSpec::ParseFile(SpecPath("live_event.toml"));
  const auto trace = MaterializeSpec(spec);
  const auto in_window = ModalUrlInWindow(trace, 0, 20 * util::kMillisPerHour,
                                          25 * util::kMillisPerHour);
  ASSERT_GT(in_window.total, 50u);
  EXPECT_GT(in_window.Share(), 0.5);
}

// ---------------------------------------------------------------------------
// Canonical form and fingerprint.

TEST_F(ScenarioSpecTest, CanonicalFormRoundTripsForEveryShippedScenario) {
  for (const auto& golden : kGoldenScenarios) {
    const auto spec = cdn::ScenarioSpec::ParseFile(SpecPath(golden.file));
    const std::string canonical = spec.CanonicalToml();
    const auto reparsed = cdn::ScenarioSpec::Parse(canonical, "<canonical>");
    EXPECT_EQ(reparsed.CanonicalToml(), canonical) << golden.file;
    EXPECT_EQ(reparsed.Fingerprint(), spec.Fingerprint()) << golden.file;
  }
}

TEST_F(ScenarioSpecTest, FingerprintSeesEveryKnob) {
  const auto base = cdn::ScenarioSpec::ParseFile(SpecPath("takedown.toml"));
  cdn::ScenarioSpec edited = base;
  edited.seed += 1;
  EXPECT_NE(edited.Fingerprint(), base.Fingerprint());
  edited = base;
  edited.scale = 0.005;
  EXPECT_NE(edited.Fingerprint(), base.Fingerprint());
  edited = base;
  edited.events[0].end_hours += 1.0;
  EXPECT_NE(edited.Fingerprint(), base.Fingerprint());
  edited = base;
  edited.sim.push.enabled = !edited.sim.push.enabled;
  EXPECT_NE(edited.Fingerprint(), base.Fingerprint());
}

// ---------------------------------------------------------------------------
// Malformed-file corpus: every defect fails loudly, nothing half-loads.

std::string ParseError(const std::string& text) {
  try {
    cdn::ScenarioSpec::Parse(text, "<bad>");
  } catch (const ConfigError& e) {
    return e.what();
  }
  return "";
}

constexpr char kMinimalSite[] = "[[site]]\nprofile = \"V-1\"\n";

TEST_F(ScenarioSpecTest, RejectsUnknownTopLevelKey) {
  const std::string err =
      ParseError(std::string("name = \"x\"\nsped = 1\n") + kMinimalSite);
  EXPECT_NE(err.find("unknown key 'sped'"), std::string::npos) << err;
  EXPECT_NE(err.find("<bad>:2:"), std::string::npos) << err;
}

TEST_F(ScenarioSpecTest, RejectsUnknownSiteKey) {
  const std::string err = ParseError(
      "name = \"x\"\n[[site]]\nprofile = \"V-1\"\nzpif_s = 1.1\n");
  EXPECT_NE(err.find("unknown key 'zpif_s'"), std::string::npos) << err;
  EXPECT_NE(err.find("site[0]"), std::string::npos) << err;
}

TEST_F(ScenarioSpecTest, RejectsWrongType) {
  const std::string err =
      ParseError(std::string("name = \"x\"\nscale = \"big\"\n") +
                 kMinimalSite);
  EXPECT_NE(err.find("expected float"), std::string::npos) << err;
}

TEST_F(ScenarioSpecTest, RejectsOutOfRangeScale) {
  const std::string err =
      ParseError(std::string("name = \"x\"\nscale = 100.0\n") + kMinimalSite);
  EXPECT_NE(err.find("scale"), std::string::npos) << err;
}

TEST_F(ScenarioSpecTest, RejectsMissingName) {
  const std::string err = ParseError(kMinimalSite);
  EXPECT_NE(err.find("missing required key 'name'"), std::string::npos)
      << err;
}

TEST_F(ScenarioSpecTest, RejectsEmptySiteList) {
  const std::string err = ParseError("name = \"x\"\n");
  EXPECT_NE(err.find("at least one [[site]]"), std::string::npos) << err;
}

TEST_F(ScenarioSpecTest, RejectsUnknownBaseProfile) {
  const std::string err =
      ParseError("name = \"x\"\n[[site]]\nprofile = \"V-9\"\n");
  EXPECT_NE(err.find("unknown base profile 'V-9'"), std::string::npos) << err;
}

TEST_F(ScenarioSpecTest, RejectsDuplicateSiteNames) {
  const std::string err = ParseError(
      "name = \"x\"\n"
      "[[site]]\nprofile = \"V-1\"\n"
      "[[site]]\nprofile = \"V-2\"\nname = \"V-1\"\n");
  EXPECT_NE(err.find("duplicate site name 'V-1'"), std::string::npos) << err;
}

TEST_F(ScenarioSpecTest, RejectsUnknownEventKind) {
  const std::string err = ParseError(
      std::string("name = \"x\"\n") + kMinimalSite +
      "[[event]]\nkind = \"flashcrowd\"\n");
  EXPECT_NE(err.find("unknown event kind"), std::string::npos) << err;
}

TEST_F(ScenarioSpecTest, RejectsEventForUnknownSite) {
  const std::string err = ParseError(
      std::string("name = \"x\"\n") + kMinimalSite +
      "[[event]]\nkind = \"takedown\"\nsite = \"V-2\"\n"
      "start_hours = 1.0\nend_hours = 2.0\nobject = 0\n");
  EXPECT_NE(err.find("unknown site 'V-2'"), std::string::npos) << err;
}

TEST_F(ScenarioSpecTest, RejectsInvertedEventWindow) {
  const std::string err = ParseError(
      std::string("name = \"x\"\n") + kMinimalSite +
      "[[event]]\nkind = \"takedown\"\nsite = \"V-1\"\n"
      "start_hours = 5.0\nend_hours = 2.0\nobject = 0\n");
  EXPECT_NE(err.find("0 <= start < end"), std::string::npos) << err;
}

TEST_F(ScenarioSpecTest, RejectsOverlappingEventWindows) {
  const std::string err = ParseError(
      std::string("name = \"x\"\n") + kMinimalSite +
      "[[event]]\nkind = \"flash-crowd\"\nsite = \"V-1\"\n"
      "start_hours = 1.0\nend_hours = 10.0\nobject = 0\nshare = 0.5\n"
      "[[event]]\nkind = \"flash-crowd\"\nsite = \"V-1\"\n"
      "start_hours = 5.0\nend_hours = 12.0\nobject = 1\nshare = 0.5\n");
  EXPECT_NE(err.find("overlapping flash-crowd event windows"),
            std::string::npos)
      << err;
}

TEST_F(ScenarioSpecTest, RejectsOutOfRangeShare) {
  const std::string err = ParseError(
      std::string("name = \"x\"\n") + kMinimalSite +
      "[[event]]\nkind = \"flash-crowd\"\nsite = \"V-1\"\n"
      "start_hours = 1.0\nend_hours = 2.0\nobject = 0\nshare = 1.5\n");
  EXPECT_NE(err.find("share"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// Checkpoint identity: a spec run refuses to resume against a mutated spec.

TEST_F(ScenarioSpecTest, KilledSpecRunResumesByteIdentically) {
  auto spec = cdn::ScenarioSpec::ParseFile(SpecPath("takedown.toml"));
  const SpecRun golden = RunSpec(spec, 2);

  const std::string path = ::testing::TempDir() + "/atlas_spec_kr.v2";
  const std::string ckpt_path = ::testing::TempDir() + "/atlas_spec_kr.ckpt";
  {
    std::ofstream out(path, std::ios::binary);
    trace::TraceWriter writer(out);
    trace::WriterSink sink(writer);
    cdn::CheckpointOptions opts;
    opts.every_epochs = 1;
    opts.path = ckpt_path;
    opts.save_extra = [&](ckpt::Writer& w) { writer.SaveState(w); };
    opts.after_save = [](std::uint64_t done) { return done < 60; };
    cdn::StreamScenario(spec, sink, 2, opts);
  }
  std::ofstream torn(path, std::ios::binary | std::ios::app);
  torn << "TORN-TAIL";
  torn.close();

  auto snapshot = ckpt::ReadCheckpointFile(ckpt_path);
  trace::ResumedTraceFile resumed(path, snapshot);
  trace::WriterSink sink(resumed.writer());
  cdn::CheckpointOptions opts;
  opts.resume = &snapshot;
  cdn::StreamScenario(spec, sink, 2, opts);
  resumed.writer().Finish();
  EXPECT_EQ(resumed.writer().written(), golden.records);
  EXPECT_EQ(util::Fnv1a64(ReadFileBytes(path)), util::Fnv1a64(golden.bytes));
}

TEST_F(ScenarioSpecTest, ResumeRejectsMutatedSpec) {
  auto spec = cdn::ScenarioSpec::ParseFile(SpecPath("takedown.toml"));
  const std::string path = ::testing::TempDir() + "/atlas_spec_mut.v2";
  const std::string ckpt_path = ::testing::TempDir() + "/atlas_spec_mut.ckpt";
  {
    std::ofstream out(path, std::ios::binary);
    trace::TraceWriter writer(out);
    trace::WriterSink sink(writer);
    cdn::CheckpointOptions opts;
    opts.every_epochs = 1;
    opts.path = ckpt_path;
    opts.save_extra = [&](ckpt::Writer& w) { writer.SaveState(w); };
    opts.after_save = [](std::uint64_t done) { return done < 3; };
    cdn::StreamScenario(spec, sink, 2, opts);
  }

  // Same shape (sites, seed) but a different event timeline: the scenario
  // layer's seed/site check passes, only the spec fingerprint can catch it.
  cdn::ScenarioSpec mutated = spec;
  mutated.events[0].end_hours += 1.0;
  auto snapshot = ckpt::ReadCheckpointFile(ckpt_path);
  trace::ResumedTraceFile resumed(path, snapshot);
  trace::WriterSink sink(resumed.writer());
  cdn::CheckpointOptions opts;
  opts.resume = &snapshot;
  try {
    cdn::StreamScenario(mutated, sink, 2, opts);
    FAIL() << "resume against a mutated spec must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(ScenarioSpecTest, SpecResumeRejectsProfilesCheckpoint) {
  // A checkpoint written by the profiles-based pipeline has no
  // scenario.spec section; resuming it through the spec path must say so
  // rather than restore unverified state.
  auto spec = cdn::ScenarioSpec::ParseFile(SpecPath("takedown.toml"));
  const std::string path = ::testing::TempDir() + "/atlas_spec_nospec.v2";
  const std::string ckpt_path =
      ::testing::TempDir() + "/atlas_spec_nospec.ckpt";
  {
    std::ofstream out(path, std::ios::binary);
    trace::TraceWriter writer(out);
    trace::WriterSink sink(writer);
    cdn::CheckpointOptions opts;
    opts.every_epochs = 1;
    opts.path = ckpt_path;
    opts.save_extra = [&](ckpt::Writer& w) { writer.SaveState(w); };
    opts.after_save = [](std::uint64_t done) { return done < 3; };
    cdn::StreamScenario(spec.BuildProfiles(), spec.BuildConfig(), spec.seed,
                        sink, 2, opts);
  }
  auto snapshot = ckpt::ReadCheckpointFile(ckpt_path);
  trace::ResumedTraceFile resumed(path, snapshot);
  trace::WriterSink sink(resumed.writer());
  cdn::CheckpointOptions opts;
  opts.resume = &snapshot;
  try {
    cdn::StreamScenario(spec, sink, 2, opts);
    FAIL() << "spec resume of a spec-less checkpoint must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("scenario.spec"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Duplicate site names in the programmatic constructors (regression).

TEST_F(ScenarioSpecTest, ScenarioConstructorRejectsDuplicateSiteNames) {
  std::vector<synth::SiteProfile> profiles = {
      synth::SiteProfile::V1(0.001), synth::SiteProfile::V1(0.001)};
  cdn::SimulatorConfig config;
  try {
    cdn::Scenario scenario(profiles, config, 42, 1);
    FAIL() << "duplicate site names must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate site name 'V-1'"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(ScenarioSpecTest, StreamScenarioRejectsDuplicateSiteNames) {
  std::vector<synth::SiteProfile> profiles = {
      synth::SiteProfile::P1(0.001), synth::SiteProfile::P1(0.001)};
  cdn::SimulatorConfig config;
  trace::TraceBuffer out;
  trace::BufferSink sink(out);
  EXPECT_THROW(cdn::StreamScenario(profiles, config, 42, sink, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace atlas
