#include "analysis/temporal.h"

#include <gtest/gtest.h>

#include "analysis_fixtures.h"
#include "cdn/simulator.h"
#include "util/time.h"

namespace atlas::analysis {
namespace {

using testing::MakeRecord;
using testing::RecordSpec;

TEST(HourlyVolumeTest, PercentagesSumTo100) {
  trace::TraceBuffer buf;
  for (int h = 0; h < 24; ++h) {
    buf.Add(MakeRecord({.t = h * util::kMillisPerHour, .url = 1}));
  }
  const auto result = ComputeHourlyVolume(buf, "X");
  double total = 0;
  for (double p : result.percent_by_hour) total += p;
  EXPECT_NEAR(total, 100.0, 1e-9);
}

TEST(HourlyVolumeTest, TimezoneShiftsHours) {
  trace::TraceBuffer buf;
  // Requests at 00:00 UTC from a user at UTC+2: local hour is 2.
  buf.Add(MakeRecord({.t = 0, .url = 1, .tz = 8}));
  const auto result = ComputeHourlyVolume(buf, "X");
  EXPECT_DOUBLE_EQ(result.percent_by_hour[2], 100.0);
  EXPECT_DOUBLE_EQ(result.percent_by_hour[0], 0.0);
}

TEST(HourlyVolumeTest, NegativeLocalTimeWraps) {
  // 00:30 UTC Saturday at UTC-8 is 16:30 Friday local; it must count in
  // hour 16, not crash.
  trace::TraceBuffer buf;
  buf.Add(MakeRecord({.t = 30 * util::kMillisPerMinute, .url = 1, .tz = -32}));
  const auto result = ComputeHourlyVolume(buf, "X");
  EXPECT_DOUBLE_EQ(result.percent_by_hour[16], 100.0);
}

TEST(HourlyVolumeTest, PeakAndTrough) {
  trace::TraceBuffer buf;
  for (int i = 0; i < 10; ++i) {
    buf.Add(MakeRecord({.t = 2 * util::kMillisPerHour + i, .url = 1}));
  }
  buf.Add(MakeRecord({.t = 14 * util::kMillisPerHour, .url = 1}));
  const auto result = ComputeHourlyVolume(buf, "X");
  EXPECT_EQ(result.PeakHour(), 2);
  EXPECT_GT(result.PeakToMean(), 2.0);
}

TEST(HourlyVolumeTest, BytePercentagesIndependent) {
  trace::TraceBuffer buf;
  buf.Add(MakeRecord({.t = 0, .url = 1, .bytes = 900}));
  buf.Add(MakeRecord({.t = util::kMillisPerHour, .url = 1, .bytes = 100}));
  const auto result = ComputeHourlyVolume(buf, "X");
  EXPECT_DOUBLE_EQ(result.percent_by_hour[0], 50.0);
  EXPECT_DOUBLE_EQ(result.percent_bytes_by_hour[0], 90.0);
}

TEST(HourlyVolumeTest, WeekSeriesAccumulates) {
  trace::TraceBuffer buf;
  buf.Add(MakeRecord({.t = 3 * util::kMillisPerDay, .url = 1}));
  const auto result = ComputeHourlyVolume(buf, "X");
  EXPECT_DOUBLE_EQ(result.week_series.Total(), 1.0);
  EXPECT_EQ(result.week_series.size(),
            static_cast<std::size_t>(util::kHoursPerWeek));
}

TEST(PeakHourDistanceTest, WrapsAroundMidnight) {
  HourlyVolume a, b;
  a.percent_by_hour[23] = 100.0;
  b.percent_by_hour[1] = 100.0;
  EXPECT_EQ(PeakHourDistance(a, b), 2);
  HourlyVolume c, d;
  c.percent_by_hour[2] = 100.0;
  d.percent_by_hour[14] = 100.0;
  EXPECT_EQ(PeakHourDistance(c, d), 12);
}

// Closed loop (Fig. 3): V-1's peak lands in the late-night/early-morning
// band while the non-adult control peaks in the evening; the phase gap is
// large.
TEST(HourlyVolumeClosedLoopTest, V1OppositeOfNonAdult) {
  cdn::SimulatorConfig config;
  const auto v1 = cdn::SimulateSite(synth::SiteProfile::V1(0.02), 0, config, 3);
  const auto n1 =
      cdn::SimulateSite(synth::SiteProfile::NonAdult(0.02), 1, config, 3);
  const auto hv1 = ComputeHourlyVolume(v1.trace, "V-1");
  const auto hn1 = ComputeHourlyVolume(n1.trace, "N-1");
  // N-1 (amplitude 0.45, peak 21:00) is sharply diurnal.
  EXPECT_GE(hn1.PeakHour(), 18);
  // Band comparison is robust at small scales where single peak hours are
  // noisy: V-1 concentrates in the late-night/early-morning band (23-07
  // local), N-1 in the evening band (17-23).
  const auto band_mass = [](const HourlyVolume& hv, int lo, int hi) {
    double mass = 0.0;
    for (int h = lo; h != hi; h = (h + 1) % 24) {
      mass += hv.percent_by_hour[static_cast<std::size_t>(h)];
    }
    return mass;
  };
  EXPECT_GT(band_mass(hv1, 23, 7), band_mass(hn1, 23, 7));
  EXPECT_GT(band_mass(hn1, 17, 23), band_mass(hv1, 17, 23));
}

}  // namespace
}  // namespace atlas::analysis
