#include "trace/useragent.h"

#include <gtest/gtest.h>

namespace atlas::trace {
namespace {

TEST(ParseUserAgentTest, DesktopWindowsChrome) {
  const auto info = ParseUserAgent(
      "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, "
      "like Gecko) Chrome/46.0.2490.86 Safari/537.36");
  EXPECT_EQ(info.device, DeviceType::kDesktop);
  EXPECT_EQ(info.os, OsFamily::kWindows);
  EXPECT_EQ(info.browser, BrowserFamily::kChrome);  // not Safari!
  EXPECT_FALSE(info.is_bot);
}

TEST(ParseUserAgentTest, MacSafari) {
  const auto info = ParseUserAgent(
      "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_11_1) AppleWebKit/601.2.7 "
      "(KHTML, like Gecko) Version/9.0.1 Safari/601.2.7");
  EXPECT_EQ(info.device, DeviceType::kDesktop);
  EXPECT_EQ(info.os, OsFamily::kMacOs);
  EXPECT_EQ(info.browser, BrowserFamily::kSafari);
}

TEST(ParseUserAgentTest, AndroidPhone) {
  const auto info = ParseUserAgent(
      "Mozilla/5.0 (Linux; Android 5.1.1; SM-G920F Build/LMY47X) "
      "AppleWebKit/537.36 (KHTML, like Gecko) Chrome/46.0.2490.76 Mobile "
      "Safari/537.36");
  EXPECT_EQ(info.device, DeviceType::kAndroid);
  EXPECT_EQ(info.os, OsFamily::kAndroidOs);
  EXPECT_EQ(info.browser, BrowserFamily::kChrome);
}

TEST(ParseUserAgentTest, AndroidTabletIsMisc) {
  // No "Mobile" token -> tablet -> Misc bucket per the paper's taxonomy.
  const auto info = ParseUserAgent(
      "Mozilla/5.0 (Linux; Android 5.0.2; SM-T530 Build/LRX22G) "
      "AppleWebKit/537.36 (KHTML, like Gecko) Chrome/46.0.2490.76 "
      "Safari/537.36");
  EXPECT_EQ(info.device, DeviceType::kMisc);
  EXPECT_EQ(info.os, OsFamily::kAndroidOs);
}

TEST(ParseUserAgentTest, IphoneSafari) {
  const auto info = ParseUserAgent(
      "Mozilla/5.0 (iPhone; CPU iPhone OS 9_1 like Mac OS X) "
      "AppleWebKit/601.1.46 (KHTML, like Gecko) Version/9.0 Mobile/13B143 "
      "Safari/601.1");
  EXPECT_EQ(info.device, DeviceType::kIos);
  EXPECT_EQ(info.os, OsFamily::kIosOs);  // not macOS despite "like Mac OS X"
  EXPECT_EQ(info.browser, BrowserFamily::kSafari);
}

TEST(ParseUserAgentTest, ChromeOnIosIsChrome) {
  const auto info = ParseUserAgent(
      "Mozilla/5.0 (iPhone; CPU iPhone OS 8_4 like Mac OS X) "
      "AppleWebKit/600.1.4 (KHTML, like Gecko) CriOS/45.0.2454.89 "
      "Mobile/12H143 Safari/600.1.4");
  EXPECT_EQ(info.device, DeviceType::kIos);
  EXPECT_EQ(info.browser, BrowserFamily::kChrome);
}

TEST(ParseUserAgentTest, IpadIsMisc) {
  const auto info = ParseUserAgent(
      "Mozilla/5.0 (iPad; CPU OS 9_1 like Mac OS X) AppleWebKit/601.1.46 "
      "(KHTML, like Gecko) Version/9.0 Mobile/13B143 Safari/601.1");
  EXPECT_EQ(info.device, DeviceType::kMisc);
  EXPECT_EQ(info.os, OsFamily::kIosOs);
}

TEST(ParseUserAgentTest, EdgeBeforeChrome) {
  const auto info = ParseUserAgent(
      "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, "
      "like Gecko) Chrome/46.0.2486.0 Safari/537.36 Edge/13.10586");
  EXPECT_EQ(info.browser, BrowserFamily::kEdge);
}

TEST(ParseUserAgentTest, OperaBeforeChrome) {
  const auto info = ParseUserAgent(
      "Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.36 (KHTML, like "
      "Gecko) Chrome/45.0.2454.85 Safari/537.36 OPR/32.0.1948.69");
  EXPECT_EQ(info.browser, BrowserFamily::kOpera);
}

TEST(ParseUserAgentTest, InternetExplorer) {
  EXPECT_EQ(ParseUserAgent("Mozilla/5.0 (Windows NT 6.1; Trident/7.0; "
                           "rv:11.0) like Gecko")
                .browser,
            BrowserFamily::kIe);
  EXPECT_EQ(ParseUserAgent("Mozilla/5.0 (compatible; MSIE 10.0; Windows NT "
                           "6.2; WOW64; Trident/6.0)")
                .browser,
            BrowserFamily::kIe);
}

TEST(ParseUserAgentTest, Firefox) {
  const auto info = ParseUserAgent(
      "Mozilla/5.0 (X11; Ubuntu; Linux x86_64; rv:41.0) Gecko/20100101 "
      "Firefox/41.0");
  EXPECT_EQ(info.browser, BrowserFamily::kFirefox);
  EXPECT_EQ(info.os, OsFamily::kLinux);
  EXPECT_EQ(info.device, DeviceType::kDesktop);
}

TEST(ParseUserAgentTest, WindowsPhoneIsMisc) {
  const auto info = ParseUserAgent(
      "Mozilla/5.0 (Windows Phone 10.0; Android 4.2.1; Microsoft; Lumia 950) "
      "AppleWebKit/537.36 (KHTML, like Gecko) Chrome/46.0.2486.0 Mobile "
      "Safari/537.36 Edge/13.10586");
  EXPECT_EQ(info.device, DeviceType::kMisc);
}

TEST(ParseUserAgentTest, BotsFlagged) {
  const auto info = ParseUserAgent(
      "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)");
  EXPECT_TRUE(info.is_bot);
  EXPECT_EQ(info.device, DeviceType::kMisc);
}

TEST(ParseUserAgentTest, EmptyString) {
  const auto info = ParseUserAgent("");
  EXPECT_EQ(info.device, DeviceType::kDesktop);
  EXPECT_EQ(info.os, OsFamily::kOtherOs);
  EXPECT_EQ(info.browser, BrowserFamily::kOtherBrowser);
}

TEST(UaBankTest, EveryEntryParsesConsistently) {
  const auto& bank = UaBank::Instance();
  ASSERT_GT(bank.size(), 0);
  for (std::uint16_t i = 0; i < bank.size(); ++i) {
    EXPECT_EQ(ParseUserAgent(bank.String(i)), bank.Info(i));
  }
}

TEST(UaBankTest, CoversEveryDeviceType) {
  const auto& bank = UaBank::Instance();
  for (int d = 0; d < kNumDeviceTypes; ++d) {
    const auto ids = bank.IdsForDevice(static_cast<DeviceType>(d));
    EXPECT_FALSE(ids.empty()) << ToString(static_cast<DeviceType>(d));
    for (const auto id : ids) {
      EXPECT_EQ(bank.Info(id).device, static_cast<DeviceType>(d));
    }
  }
}

}  // namespace
}  // namespace atlas::trace
