// The TOML subset reader behind scenario files: values parse with positions,
// malformed input fails naming line and column, TableView enforces the
// consume-every-key contract, and the serialization helpers round-trip.
#include "util/config.h"

#include <gtest/gtest.h>

#include <string>

namespace atlas::util::config {
namespace {

Value Parse(const std::string& text) { return ParseToml(text, "<test>"); }

std::string ErrorOf(const std::string& text) {
  try {
    ParseToml(text, "<test>");
  } catch (const ConfigError& e) {
    return e.what();
  }
  return "";
}

TEST(ConfigTest, ParsesScalarsWithTypes) {
  const Value root = Parse(
      "name = \"abc\"\n"
      "count = 42\n"
      "big = 1_000_000\n"
      "ratio = 0.25\n"
      "sci = 1e3\n"
      "neg = -7\n"
      "on = true\n"
      "off = false\n");
  EXPECT_EQ(root.Find("name")->AsString("<test>"), "abc");
  EXPECT_EQ(root.Find("count")->AsInt("<test>"), 42);
  EXPECT_EQ(root.Find("big")->AsInt("<test>"), 1000000);
  EXPECT_DOUBLE_EQ(root.Find("ratio")->AsFloat("<test>"), 0.25);
  EXPECT_DOUBLE_EQ(root.Find("sci")->AsFloat("<test>"), 1000.0);
  EXPECT_EQ(root.Find("neg")->AsInt("<test>"), -7);
  EXPECT_TRUE(root.Find("on")->AsBool("<test>"));
  EXPECT_FALSE(root.Find("off")->AsBool("<test>"));
}

TEST(ConfigTest, IntPromotesToFloatButNotBack) {
  const Value root = Parse("x = 3\n");
  EXPECT_DOUBLE_EQ(root.Find("x")->AsFloat("<test>"), 3.0);
  const Value f = Parse("y = 3.5\n");
  EXPECT_THROW(f.Find("y")->AsInt("<test>"), ConfigError);
}

TEST(ConfigTest, StringEscapes) {
  const Value root = Parse(R"(s = "a\"b\\c\nd")" "\n");
  EXPECT_EQ(root.Find("s")->AsString("<test>"), "a\"b\\c\nd");
}

TEST(ConfigTest, ArraysAndTrailingComma) {
  const Value root = Parse("xs = [1, 2, 3,]\n");
  const Value* xs = root.Find("xs");
  ASSERT_EQ(xs->kind, Value::Kind::kArray);
  ASSERT_EQ(xs->array.size(), 3u);
  EXPECT_EQ(xs->array[2].AsInt("<test>"), 3);
}

TEST(ConfigTest, DottedTableHeaders) {
  const Value root = Parse(
      "[a.b]\n"
      "x = 1\n"
      "[a.c]\n"
      "y = 2\n");
  const Value* a = root.Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->Find("b")->Find("x")->AsInt("<test>"), 1);
  EXPECT_EQ(a->Find("c")->Find("y")->AsInt("<test>"), 2);
}

TEST(ConfigTest, ArrayOfTables) {
  const Value root = Parse(
      "[[site]]\n"
      "name = \"one\"\n"
      "[[site]]\n"
      "name = \"two\"\n");
  const Value* sites = root.Find("site");
  ASSERT_EQ(sites->kind, Value::Kind::kArray);
  ASSERT_EQ(sites->array.size(), 2u);
  EXPECT_EQ(sites->array[1].Find("name")->AsString("<test>"), "two");
}

TEST(ConfigTest, CommentsAndBlankLines) {
  const Value root = Parse(
      "# leading comment\n"
      "\n"
      "x = 1  # trailing comment\n");
  EXPECT_EQ(root.Find("x")->AsInt("<test>"), 1);
}

TEST(ConfigTest, ErrorsCarrySourceLineAndColumn) {
  const std::string err = ErrorOf("ok = 1\nbad = @nope\n");
  EXPECT_NE(err.find("<test>:2:"), std::string::npos) << err;
}

TEST(ConfigTest, DuplicateKeyRejected) {
  const std::string err = ErrorOf("x = 1\nx = 2\n");
  EXPECT_NE(err.find("duplicate key 'x'"), std::string::npos) << err;
}

TEST(ConfigTest, UnterminatedStringRejected) {
  EXPECT_NE(ErrorOf("s = \"oops\n").find("unterminated"), std::string::npos);
}

TEST(ConfigTest, TextAfterValueRejected) {
  EXPECT_NE(ErrorOf("x = 1 y\n").find("unexpected text"), std::string::npos);
}

TEST(ConfigTest, TableViewRequiredAndDefaulted) {
  const Value root = Parse("x = 5\n");
  TableView t(root, "root", "<test>");
  EXPECT_EQ(t.GetInt("x"), 5);
  EXPECT_EQ(t.GetInt("missing", 9), 9);
  EXPECT_THROW(t.GetInt("missing"), ConfigError);
}

TEST(ConfigTest, TableViewTypeMismatchNamesPathAndTypes) {
  const Value root = Parse("x = \"nope\"\n");
  TableView t(root, "root", "<test>");
  try {
    t.GetInt("x");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("root.x"), std::string::npos) << what;
    EXPECT_NE(what.find("expected integer"), std::string::npos) << what;
  }
}

TEST(ConfigTest, RejectUnknownKeysNamesTheTypo) {
  const Value root = Parse("good = 1\ntypo = 2\n");
  TableView t(root, "root", "<test>");
  t.GetInt("good");
  try {
    t.RejectUnknownKeys();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown key 'typo'"), std::string::npos) << what;
    EXPECT_NE(what.find("<test>:2:"), std::string::npos) << what;
  }
}

TEST(ConfigTest, ConsumedNestedTablesPassRejectUnknownKeys) {
  const Value root = Parse("[sub]\nx = 1\n");
  TableView t(root, "root", "<test>");
  const Value* sub = t.Consume("sub");
  ASSERT_NE(sub, nullptr);
  TableView s(*sub, "root.sub", "<test>");
  s.GetInt("x");
  EXPECT_NO_THROW(s.RejectUnknownKeys());
  EXPECT_NO_THROW(t.RejectUnknownKeys());
}

TEST(ConfigTest, TomlStringEscapesRoundTrip) {
  const std::string literal = TomlString("a\"b\\c\nd");
  const Value root = Parse("s = " + literal + "\n");
  EXPECT_EQ(root.Find("s")->AsString("<test>"), "a\"b\\c\nd");
}

TEST(ConfigTest, TomlFloatRoundTripsExactly) {
  for (const double v : {0.0, 1.0, 0.25, 0.1, 1e-9, 6.02214076e23, -3.75,
                         0.004, 1.0 / 3.0}) {
    const std::string rendered = TomlFloat(v);
    const Value root = Parse("x = " + rendered + "\n");
    EXPECT_EQ(root.Find("x")->AsFloat("<test>"), v) << rendered;
    // A float must re-parse as a float, never collapse to an integer.
    EXPECT_EQ(root.Find("x")->kind, Value::Kind::kFloat) << rendered;
  }
}

}  // namespace
}  // namespace atlas::util::config
