// atlas-lint engine tests.
//
// Five properties gate the `lint` label:
//   1. every per-file rule fires on its tests/lint_corpus/ fixture at the
//      expected (line, rule) — and nowhere else in that fixture;
//   2. the allow() escape hatch suppresses in both supported positions,
//      and a pragma that suppresses nothing becomes a finding itself;
//   3. the cross-TU rules (layer-dag, lock-order, unguarded-parallel-write,
//      fp-accumulation-order) fire on their tests/lint_corpus/project/
//      fixture trees and stay quiet on the clean variants;
//   4. SARIF output is byte-stable (golden file) and baseline application
//      freezes exactly the recorded debt while flagging stale entries;
//   5. the live tree lints clean, byte-identically at 1, 2 and 8 threads.
#include "atlas_lint/lint.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace atlas::lint {
namespace {

std::string CorpusPath(const std::string& name) {
  return std::string(ATLAS_SOURCE_DIR) + "/tests/lint_corpus/" + name;
}

std::string ReadCorpus(const std::string& name) {
  const std::string path = CorpusPath(name);
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing corpus file: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string Dump(const std::vector<Finding>& findings) {
  std::string out;
  for (const auto& f : findings) out += "  " + FormatFinding(f) + "\n";
  return out.empty() ? "  (none)\n" : out;
}

struct Expected {
  std::size_t line;
  std::string rule;
};

// Lints `corpus_file` under `synthetic_path` (the path places the content in
// the rule's scope) and asserts the findings are exactly `expected`.
void ExpectFindings(const std::string& corpus_file,
                    const std::string& synthetic_path,
                    const std::vector<Expected>& expected) {
  const auto findings = LintFile(synthetic_path, ReadCorpus(corpus_file));
  ASSERT_EQ(findings.size(), expected.size())
      << corpus_file << " as " << synthetic_path << " produced:\n"
      << Dump(findings);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(findings[i].line, expected[i].line) << FormatFinding(findings[i]);
    EXPECT_EQ(findings[i].rule, expected[i].rule) << FormatFinding(findings[i]);
    EXPECT_EQ(findings[i].file, synthetic_path);
    EXPECT_FALSE(findings[i].message.empty());
  }
}

// Lints a fixture tree under tests/lint_corpus/project/.
ProjectReport LintFixtureTree(const std::string& name) {
  return LintProject(CorpusPath("project/" + name));
}

// ---------------------------------------------------------------------------
// Per-file rules (phase-2 rules_file.cc) on the single-file corpus.
// ---------------------------------------------------------------------------

TEST(LintCorpusTest, NondetRandomDevice) {
  ExpectFindings("nondet_random_device.cc", "src/synth/fixture.cc",
                 {{5, "nondet-random-device"}});
}

TEST(LintCorpusTest, NondetRand) {
  ExpectFindings("nondet_rand.cc", "src/synth/fixture.cc",
                 {{5, "nondet-rand"}});
}

TEST(LintCorpusTest, NondetTime) {
  ExpectFindings("nondet_time.cc", "src/util/fixture.cc",
                 {{5, "nondet-time"}});
}

TEST(LintCorpusTest, NondetSystemClock) {
  ExpectFindings("nondet_system_clock.cc", "src/util/fixture.cc",
                 {{5, "nondet-system-clock"}});
}

TEST(LintCorpusTest, SystemClockPermittedInUtilTime) {
  // util/time.{h,cc} is the one sanctioned wall-clock read site.
  ExpectFindings("nondet_system_clock.cc", "src/util/time.cc", {});
}

TEST(LintCorpusTest, RawNewDelete) {
  // `= delete` on line 10 is a deleted special member, not a deallocation.
  ExpectFindings("raw_new_delete.cc", "src/cdn/fixture.cc",
                 {{4, "raw-new-delete"}, {6, "raw-new-delete"}});
}

TEST(LintCorpusTest, NarrowByteCounter) {
  ExpectFindings("narrow_byte_counter.cc", "src/cdn/fixture.cc",
                 {{5, "narrow-byte-counter"}, {6, "narrow-byte-counter"}});
}

TEST(LintCorpusTest, NarrowByteCounterScopedToAccountingDirs) {
  // The same content outside src/cdn/ and src/analysis/ is not flagged.
  ExpectFindings("narrow_byte_counter.cc", "src/stats/fixture.cc", {});
}

TEST(LintCorpusTest, RawStdMutex) {
  ExpectFindings("raw_std_mutex.cc", "src/util/fixture.cc",
                 {{5, "raw-std-mutex"}, {8, "raw-std-mutex"}});
}

TEST(LintCorpusTest, MutexUnannotated) {
  ExpectFindings("mutex_unannotated.cc", "src/util/fixture.cc",
                 {{15, "mutex-unannotated"}});
}

TEST(LintCorpusTest, MissingPragmaOnce) {
  ExpectFindings("missing_pragma_once.h", "src/util/fixture.h",
                 {{1, "missing-pragma-once"}});
}

TEST(LintCorpusTest, UnorderedIter) {
  // Line 14 ranges over a call expression (sorted view) and must pass.
  ExpectFindings("unordered_iter.cc", "src/stats/fixture.cc",
                 {{11, "unordered-iter"}});
}

TEST(LintCorpusTest, UncheckedIndexCast) {
  ExpectFindings("unchecked_index_cast.cc", "src/synth/fixture.cc",
                 {{8, "unchecked-index-cast"}, {9, "unchecked-index-cast"}});
  // The rule is scoped to the synth layer: the same content elsewhere is
  // clean (the cdn/analysis layers have their own 64-bit counter rule).
  ExpectFindings("unchecked_index_cast.cc", "src/util/fixture.cc", {});
}

TEST(LintCorpusTest, AllowPragmaSuppresses) {
  ExpectFindings("allow_suppression.cc", "src/synth/fixture.cc", {});
}

TEST(LintCorpusTest, TraceBufferInCdn) {
  // Pointer member and const-reference parameters are views, not buffers.
  ExpectFindings("tracebuffer_in_cdn.cc", "src/cdn/fixture.cc",
                 {{7, "tracebuffer-in-cdn"}, {11, "tracebuffer-in-cdn"}});
}

TEST(LintCorpusTest, TraceBufferScopedToCdn) {
  // The analysis layer legitimately materializes buffers (in-memory path).
  ExpectFindings("tracebuffer_in_cdn.cc", "src/analysis/fixture.cc", {});
}

TEST(LintCorpusTest, PerRecordInHotPath) {
  // Declarations sharing the adapter names and block-path calls pass; only
  // member calls on the per-record adapters fire.
  ExpectFindings("perrecord_in_hotpath.cc", "src/analysis/fixture.cc",
                 {{9, "perrecord-in-hotpath"}, {10, "perrecord-in-hotpath"}});
  ExpectFindings("perrecord_in_hotpath.cc", "src/cdn/fixture.cc",
                 {{9, "perrecord-in-hotpath"}, {10, "perrecord-in-hotpath"}});
}

TEST(LintCorpusTest, PerRecordScopedToHotPathLayers) {
  // The adapters themselves live in src/trace/, and tools may use them for
  // compatibility; neither scope is flagged.
  ExpectFindings("perrecord_in_hotpath.cc", "src/trace/fixture.cc", {});
  ExpectFindings("perrecord_in_hotpath.cc", "tools/fixture.cc", {});
}

TEST(LintFileTest, PerRecordAllowForAdapters) {
  // A compatibility shim inside a hot-path layer suppresses with the
  // standard escape hatch.
  const std::string source =
      "#include \"trace/block.h\"\n"
      "void Shim(atlas::trace::PerRecordSource& s) {\n"
      "  // atlas-lint: allow(perrecord-in-hotpath)  adapter, not a hot loop\n"
      "  while (s.NextRecord() != nullptr) {\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/analysis/fixture.cc", source).empty());
}

TEST(LintCorpusTest, CkptUnversionedBlob) {
  // Only raw writes inside SaveState bodies fire; declarations and writes
  // in unrelated functions pass.
  ExpectFindings("ckpt_unversioned_blob.cc", "src/cdn/fixture.cc",
                 {{9, "ckpt-unversioned-blob"}, {10, "ckpt-unversioned-blob"}});
}

TEST(LintCorpusTest, CkptUnversionedBlobScopedOutsideCkpt) {
  // The codec itself (src/ckpt/) is the one place raw byte I/O is allowed.
  ExpectFindings("ckpt_unversioned_blob.cc", "src/ckpt/fixture.cc", {});
}

TEST(LintFileTest, SiblingHeaderDeclarationsResolve) {
  // A member declared only in the header must still be recognized as an
  // unordered container when the .cc ranges over it.
  const std::string header =
      "#pragma once\n"
      "#include <unordered_map>\n"
      "struct S {\n"
      "  std::unordered_map<int, int> m_;\n"
      "  long t = 0;\n"
      "  void F();\n"
      "};\n";
  const std::string source =
      "#include \"fixture.h\"\n"
      "void S::F() {\n"
      "  for (const auto& kv : m_) t += kv.second;\n"
      "}\n";
  const auto findings = LintFile("src/stats/fixture.cc", source, header);
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_EQ(findings[0].rule, "unordered-iter");
}

TEST(LintFileTest, CommentedAndQuotedTokensDoNotFire) {
  const std::string source =
      "// rand() and new in a comment\n"
      "/* std::random_device too */\n"
      "const char* kDoc = \"time(nullptr) new delete std::mutex\";\n";
  EXPECT_TRUE(LintFile("src/util/fixture.cc", source).empty());
}

// ---------------------------------------------------------------------------
// Lexer regressions (phase-0 lexer.cc).
// ---------------------------------------------------------------------------

TEST(LexerTest, RawStringBodiesAreScrubbed) {
  // Banned tokens inside raw strings (plain, delimited, prefixed,
  // multi-line) never fire; the real calls on line 10 prove the lexer
  // resumed after each closing delimiter — and that FOUR"(x" (identifier
  // merely ending in R) opened an ordinary string, not a raw one.
  ExpectFindings("raw_string_literal.cc", "src/synth/fixture.cc",
                 {{10, "raw-new-delete"},
                  {10, "raw-new-delete"},
                  {10, "nondet-rand"}});
}

TEST(LexerTest, LineContinuationsPreserveStateAndLineNumbers) {
  // The spliced // comment keeps commenting the next physical line and the
  // spliced string literal stays a string, while the real call keeps its
  // on-disk line number.
  ExpectFindings("line_continuation.cc", "src/util/fixture.cc",
                 {{10, "nondet-rand"}});
}

TEST(LexerTest, ScrubKeepsPhysicalLineCount) {
  const ScrubbedFile s = Scrub("int a; \\\nint b;\n// c \\\nrand()\n");
  // 1-based: [0] unused + 4 physical lines + trailing empty line.
  ASSERT_EQ(s.code.size(), 6u);
  EXPECT_EQ(s.code[1], "int a; ");
  EXPECT_EQ(s.code[2], "int b;");
  EXPECT_TRUE(s.code[4].find("rand") == std::string::npos)
      << "spliced comment leaked into code: " << s.code[4];
  EXPECT_NE(s.comment[4].find("rand()"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Suppression hygiene (unused-suppression).
// ---------------------------------------------------------------------------

TEST(LintCorpusTest, UnusedSuppressionsAreFindings) {
  const auto findings =
      LintFile("src/util/fixture.cc", ReadCorpus("unused_suppression.cc"));
  ASSERT_EQ(findings.size(), 2u) << Dump(findings);
  EXPECT_EQ(findings[0].line, 6u);
  EXPECT_EQ(findings[0].rule, "unused-suppression");
  EXPECT_NE(findings[0].message.find("anymore"), std::string::npos);
  EXPECT_EQ(findings[1].line, 8u);
  EXPECT_EQ(findings[1].rule, "unused-suppression");
  EXPECT_NE(findings[1].message.find("not a known rule"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Cross-TU project rules (phase-2 rules_project.cc) on fixture trees.
// ---------------------------------------------------------------------------

TEST(ProjectRulesTest, LayerDagViolationNamesTheIncludeChain) {
  const auto report = LintFixtureTree("layer_dag");
  ASSERT_EQ(report.findings.size(), 1u) << Dump(report.findings);
  const Finding& f = report.findings[0];
  EXPECT_EQ(f.file, "src/stats/metrics.h");
  EXPECT_EQ(f.line, 2u);
  EXPECT_EQ(f.rule, "layer-dag");
  // The chain names the consumer that reaches the violating header.
  EXPECT_NE(f.message.find("src/stats/user.cc -> src/stats/metrics.h -> "
                           "\"synth/gen.h\""),
            std::string::npos)
      << f.message;
  EXPECT_NE(f.message.find("rank 1"), std::string::npos);
  EXPECT_NE(f.message.find("rank 2"), std::string::npos);
  EXPECT_NE(f.message.find("util -> {stats, trace} -> synth"),
            std::string::npos);
}

TEST(ProjectRulesTest, LayerDagEnergyIsRankFourAndCdnMustNotReachIt) {
  // energy sits beside analysis (rank 4): it may include cdn, but a cdn
  // header reaching back into energy is an upward inversion.
  const auto report = LintFixtureTree("layer_dag_energy");
  ASSERT_EQ(report.findings.size(), 1u) << Dump(report.findings);
  const Finding& f = report.findings[0];
  EXPECT_EQ(f.file, "src/cdn/delivery.h");
  EXPECT_EQ(f.line, 2u);
  EXPECT_EQ(f.rule, "layer-dag");
  EXPECT_NE(f.message.find("src/cdn/delivery.cc -> src/cdn/delivery.h -> "
                           "\"energy/model.h\""),
            std::string::npos)
      << f.message;
  EXPECT_NE(f.message.find("'cdn' (rank 3) must not depend on 'energy' "
                           "(rank 4)"),
            std::string::npos)
      << f.message;
  EXPECT_NE(f.message.find("{analysis, energy}"), std::string::npos)
      << f.message;
}

TEST(ProjectRulesTest, LockOrderCycleReportsBothWitnesses) {
  const auto report = LintFixtureTree("lock_order_cycle");
  ASSERT_EQ(report.findings.size(), 1u) << Dump(report.findings);
  const Finding& f = report.findings[0];
  EXPECT_EQ(f.rule, "lock-order");
  EXPECT_EQ(f.file, "src/util/ab.cc");
  EXPECT_EQ(f.line, 4u);
  // Both sides of the cycle, each with its witness site. The mutexes are
  // declared in the shared header, so both TUs resolve to the same keys.
  EXPECT_NE(f.message.find("src/util/locks.h::a_"), std::string::npos)
      << f.message;
  EXPECT_NE(f.message.find("witnessed at src/util/ab.cc:4"),
            std::string::npos);
  EXPECT_NE(f.message.find("witnessed at src/util/ba.cc:4"),
            std::string::npos);
  EXPECT_NE(f.message.find("'b_' acquired while holding 'a_'"),
            std::string::npos);
  EXPECT_NE(f.message.find("'a_' acquired while holding 'b_'"),
            std::string::npos);
}

TEST(ProjectRulesTest, ConsistentLockOrderIsClean) {
  const auto report = LintFixtureTree("lock_order_clean");
  EXPECT_TRUE(report.findings.empty()) << Dump(report.findings);
}

TEST(ProjectRulesTest, SelfDeadlockIsACycle) {
  const std::string source =
      "struct S {\n"
      "  Mutex mu_;\n"
      "  int x_ ATLAS_GUARDED_BY(mu_) = 0;\n"
      "  void F();\n"
      "};\n"
      "void S::F() {\n"
      "  MutexLock a(mu_);\n"
      "  MutexLock b(mu_);\n"
      "}\n";
  const auto findings = LintFile("src/util/fixture.cc", source);
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "lock-order");
  EXPECT_EQ(findings[0].line, 8u);
}

TEST(ProjectRulesTest, UnguardedParallelWriteFires) {
  const auto report = LintFixtureTree("unguarded_write");
  ASSERT_EQ(report.findings.size(), 1u) << Dump(report.findings);
  const Finding& f = report.findings[0];
  EXPECT_EQ(f.file, "src/stats/acc.cc");
  EXPECT_EQ(f.line, 5u);
  EXPECT_EQ(f.rule, "unguarded-parallel-write");
  EXPECT_NE(f.message.find("'total_'"), std::string::npos) << f.message;
  // guarded_ (ATLAS_GUARDED_BY in the sibling header), hits_ (atomic) and
  // relaxed_ (scoped allow) produced nothing — and the allow was consumed,
  // so no unused-suppression either.
}

TEST(ProjectRulesTest, FpAccumulationOrderFires) {
  const auto report = LintFixtureTree("fp_accum");
  ASSERT_EQ(report.findings.size(), 2u) << Dump(report.findings);
  EXPECT_EQ(report.findings[0].file, "src/stats/fold.cc");
  EXPECT_EQ(report.findings[0].line, 7u);
  EXPECT_EQ(report.findings[0].rule, "fp-accumulation-order");
  EXPECT_NE(report.findings[0].message.find("ParallelFor"),
            std::string::npos);
  EXPECT_EQ(report.findings[1].line, 13u);
  EXPECT_EQ(report.findings[1].rule, "fp-accumulation-order");
  EXPECT_NE(report.findings[1].message.find("ForEach"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Baseline: freeze, ratchet, and serialization round-trip.
// ---------------------------------------------------------------------------

TEST(BaselineTest, SerializeParseRoundTrip) {
  const std::vector<Finding> findings = {
      {"src/a.cc", 3, 1, "nondet-rand", "m"},
      {"src/a.cc", 9, 1, "nondet-rand", "m"},
      {"src/b.h", 1, 1, "missing-pragma-once", "m"},
  };
  std::vector<std::string> errors;
  const Baseline parsed = ParseBaseline(SerializeBaseline(findings), &errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(parsed.counts.size(), 2u);
  EXPECT_EQ(parsed.counts.at({"src/a.cc", "nondet-rand"}), 2u);
  EXPECT_EQ(parsed.counts.at({"src/b.h", "missing-pragma-once"}), 1u);
}

TEST(BaselineTest, MalformedLinesAreReported) {
  std::vector<std::string> errors;
  ParseBaseline("# ok\nsrc/a.cc nondet-rand\n", &errors);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("line 2"), std::string::npos);
}

TEST(BaselineTest, FreezesExactlyTheRecordedDebt) {
  const auto report = LintFixtureTree("layer_dag");
  ASSERT_EQ(report.findings.size(), 1u);
  Baseline b;
  b.counts[{"src/stats/metrics.h", "layer-dag"}] = 1;
  const auto applied = ApplyBaseline(report.findings, b);
  EXPECT_TRUE(applied.fresh.empty()) << Dump(applied.fresh);
  EXPECT_TRUE(applied.stale.empty()) << Dump(applied.stale);
}

TEST(BaselineTest, UnbaselinedFindingsAreFresh) {
  const auto report = LintFixtureTree("layer_dag");
  const auto applied = ApplyBaseline(report.findings, Baseline{});
  ASSERT_EQ(applied.fresh.size(), 1u);
  EXPECT_EQ(applied.fresh[0].rule, "layer-dag");
}

TEST(BaselineTest, BeyondCountFindingsAreFreshFromTheBottom) {
  const std::vector<Finding> findings = {
      {"src/a.cc", 3, 1, "nondet-rand", "m"},
      {"src/a.cc", 9, 1, "nondet-rand", "m"},
  };
  Baseline b;
  b.counts[{"src/a.cc", "nondet-rand"}] = 1;
  const auto applied = ApplyBaseline(findings, b);
  ASSERT_EQ(applied.fresh.size(), 1u);
  EXPECT_EQ(applied.fresh[0].line, 9u);
}

TEST(BaselineTest, ShrunkDebtFlagsStaleEntry) {
  const auto report = LintFixtureTree("layer_dag");
  Baseline b;
  b.counts[{"src/stats/metrics.h", "layer-dag"}] = 2;
  b.counts[{"src/gone.cc", "nondet-rand"}] = 1;
  const auto applied = ApplyBaseline(report.findings, b);
  EXPECT_TRUE(applied.fresh.empty()) << Dump(applied.fresh);
  ASSERT_EQ(applied.stale.size(), 2u) << Dump(applied.stale);
  for (const Finding& f : applied.stale) {
    EXPECT_EQ(f.rule, "stale-baseline");
    EXPECT_NE(f.message.find("regenerate the baseline"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// SARIF 2.1.0 output.
// ---------------------------------------------------------------------------

TEST(SarifTest, MatchesGoldenFile) {
  const auto report = LintFixtureTree("layer_dag");
  EXPECT_EQ(ToSarif(report.findings),
            ReadCorpus("project/layer_dag.sarif.json"));
}

TEST(SarifTest, StructureCarriesRuleCatalogAndLocations) {
  const std::vector<Finding> findings = {
      {"src/a \"b\".cc", 7, 3, "nondet-rand", "line1\nline2"},
  };
  const std::string sarif = ToSarif(findings);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-schema-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"atlas-lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"nondet-rand\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleIndex\":"), std::string::npos);
  EXPECT_NE(sarif.find("\"uriBaseId\":\"SRCROOT\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":7,\"startColumn\":3"),
            std::string::npos);
  // Escaping: the quote in the path and the newline in the message.
  EXPECT_NE(sarif.find("src/a \\\"b\\\".cc"), std::string::npos);
  EXPECT_NE(sarif.find("line1\\nline2"), std::string::npos);
  // One catalog entry per rule, in catalog order.
  for (const auto& rule : Rules()) {
    EXPECT_NE(sarif.find("\"id\":\"" + std::string(rule.name) + "\""),
              std::string::npos)
        << rule.name;
  }
}

// ---------------------------------------------------------------------------
// Registry, formatting, and the live tree.
// ---------------------------------------------------------------------------

TEST(LintRegistryTest, RuleNamesAreCompleteAndCovered) {
  const std::set<std::string> expected = {
      "ckpt-unversioned-blob", "fp-accumulation-order", "layer-dag",
      "lock-order",            "missing-pragma-once",   "mutex-unannotated",
      "narrow-byte-counter",   "nondet-rand",           "nondet-random-device",
      "nondet-system-clock",   "nondet-time",           "perrecord-in-hotpath",
      "raw-new-delete",        "raw-std-mutex",         "stale-baseline",
      "tracebuffer-in-cdn",    "unchecked-index-cast",  "unguarded-parallel-write",
      "unordered-iter",        "unused-suppression",
  };
  const auto names = RuleNames();
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()), expected);
  // The catalog is sorted: SARIF ruleIndex assignment depends on it.
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(LintFormatTest, FormatFindingIsClickable) {
  const Finding with_col{"src/cdn/cache.cc", 12, 5, "raw-new-delete", "raw"};
  EXPECT_EQ(FormatFinding(with_col),
            "src/cdn/cache.cc:12:5: [raw-new-delete] raw");
  const Finding no_col{"src/cdn/cache.cc", 12, 0, "raw-new-delete", "raw"};
  EXPECT_EQ(FormatFinding(no_col), "src/cdn/cache.cc:12: [raw-new-delete] raw");
}

TEST(LintTreeTest, LiveTreeIsCleanAndThreadCountInvariant) {
  const ProjectReport t1 = LintProject(ATLAS_SOURCE_DIR, 1);
  EXPECT_TRUE(t1.findings.empty()) << Dump(t1.findings);
  // The report — and its SARIF serialization — must be byte-identical at
  // any thread count (shard-private sinks, sorted merge).
  const ProjectReport t2 = LintProject(ATLAS_SOURCE_DIR, 2);
  const ProjectReport t8 = LintProject(ATLAS_SOURCE_DIR, 8);
  EXPECT_EQ(t1.files_indexed, t2.files_indexed);
  EXPECT_EQ(t1.files_indexed, t8.files_indexed);
  EXPECT_TRUE(t1.findings == t2.findings);
  EXPECT_TRUE(t1.findings == t8.findings);
  EXPECT_EQ(ToSarif(t1.findings), ToSarif(t2.findings));
  EXPECT_EQ(ToSarif(t1.findings), ToSarif(t8.findings));
}

}  // namespace
}  // namespace atlas::lint
