// atlas-lint rule engine tests.
//
// Three properties gate the `lint` label:
//   1. every rule fires on its tests/lint_corpus/ fixture at the expected
//      (line, rule) — and nowhere else in that fixture;
//   2. the `// atlas-lint: allow(<rule>)` escape hatch suppresses in both
//      supported positions (same line, comment block directly above);
//   3. the live tree (LintTree over src/ and tools/) is finding-free.
#include "atlas_lint/lint.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace atlas::lint {
namespace {

std::string ReadCorpus(const std::string& name) {
  const std::string path =
      std::string(ATLAS_SOURCE_DIR) + "/tests/lint_corpus/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing corpus file: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string Dump(const std::vector<Finding>& findings) {
  std::string out;
  for (const auto& f : findings) out += "  " + FormatFinding(f) + "\n";
  return out.empty() ? "  (none)\n" : out;
}

struct Expected {
  std::size_t line;
  std::string rule;
};

// Lints `corpus_file` under `synthetic_path` (the path places the content in
// the rule's scope) and asserts the findings are exactly `expected`.
void ExpectFindings(const std::string& corpus_file,
                    const std::string& synthetic_path,
                    const std::vector<Expected>& expected) {
  const auto findings = LintFile(synthetic_path, ReadCorpus(corpus_file));
  ASSERT_EQ(findings.size(), expected.size())
      << corpus_file << " as " << synthetic_path << " produced:\n"
      << Dump(findings);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(findings[i].line, expected[i].line) << FormatFinding(findings[i]);
    EXPECT_EQ(findings[i].rule, expected[i].rule) << FormatFinding(findings[i]);
    EXPECT_EQ(findings[i].file, synthetic_path);
    EXPECT_FALSE(findings[i].message.empty());
  }
}

TEST(LintCorpusTest, NondetRandomDevice) {
  ExpectFindings("nondet_random_device.cc", "src/synth/fixture.cc",
                 {{5, "nondet-random-device"}});
}

TEST(LintCorpusTest, NondetRand) {
  ExpectFindings("nondet_rand.cc", "src/synth/fixture.cc",
                 {{5, "nondet-rand"}});
}

TEST(LintCorpusTest, NondetTime) {
  ExpectFindings("nondet_time.cc", "src/util/fixture.cc",
                 {{5, "nondet-time"}});
}

TEST(LintCorpusTest, NondetSystemClock) {
  ExpectFindings("nondet_system_clock.cc", "src/util/fixture.cc",
                 {{5, "nondet-system-clock"}});
}

TEST(LintCorpusTest, SystemClockPermittedInUtilTime) {
  // util/time.{h,cc} is the one sanctioned wall-clock read site.
  ExpectFindings("nondet_system_clock.cc", "src/util/time.cc", {});
}

TEST(LintCorpusTest, RawNewDelete) {
  // `= delete` on line 10 is a deleted special member, not a deallocation.
  ExpectFindings("raw_new_delete.cc", "src/cdn/fixture.cc",
                 {{4, "raw-new-delete"}, {6, "raw-new-delete"}});
}

TEST(LintCorpusTest, NarrowByteCounter) {
  ExpectFindings("narrow_byte_counter.cc", "src/cdn/fixture.cc",
                 {{5, "narrow-byte-counter"}, {6, "narrow-byte-counter"}});
}

TEST(LintCorpusTest, NarrowByteCounterScopedToAccountingDirs) {
  // The same content outside src/cdn/ and src/analysis/ is not flagged.
  ExpectFindings("narrow_byte_counter.cc", "src/stats/fixture.cc", {});
}

TEST(LintCorpusTest, RawStdMutex) {
  ExpectFindings("raw_std_mutex.cc", "src/util/fixture.cc",
                 {{5, "raw-std-mutex"}, {8, "raw-std-mutex"}});
}

TEST(LintCorpusTest, MutexUnannotated) {
  ExpectFindings("mutex_unannotated.cc", "src/util/fixture.cc",
                 {{15, "mutex-unannotated"}});
}

TEST(LintCorpusTest, MissingPragmaOnce) {
  ExpectFindings("missing_pragma_once.h", "src/util/fixture.h",
                 {{1, "missing-pragma-once"}});
}

TEST(LintCorpusTest, UnorderedIter) {
  // Line 14 ranges over a call expression (sorted view) and must pass.
  ExpectFindings("unordered_iter.cc", "src/stats/fixture.cc",
                 {{11, "unordered-iter"}});
}

TEST(LintCorpusTest, UncheckedIndexCast) {
  ExpectFindings("unchecked_index_cast.cc", "src/synth/fixture.cc",
                 {{8, "unchecked-index-cast"}, {9, "unchecked-index-cast"}});
  // The rule is scoped to the synth layer: the same content elsewhere is
  // clean (the cdn/analysis layers have their own 64-bit counter rule).
  ExpectFindings("unchecked_index_cast.cc", "src/util/fixture.cc", {});
}

TEST(LintCorpusTest, AllowPragmaSuppresses) {
  ExpectFindings("allow_suppression.cc", "src/synth/fixture.cc", {});
}

TEST(LintCorpusTest, TraceBufferInCdn) {
  // Pointer member and const-reference parameters are views, not buffers.
  ExpectFindings("tracebuffer_in_cdn.cc", "src/cdn/fixture.cc",
                 {{7, "tracebuffer-in-cdn"}, {11, "tracebuffer-in-cdn"}});
}

TEST(LintCorpusTest, TraceBufferScopedToCdn) {
  // The analysis layer legitimately materializes buffers (in-memory path).
  ExpectFindings("tracebuffer_in_cdn.cc", "src/analysis/fixture.cc", {});
}

TEST(LintCorpusTest, PerRecordInHotPath) {
  // Declarations sharing the adapter names and block-path calls pass; only
  // member calls on the per-record adapters fire.
  ExpectFindings("perrecord_in_hotpath.cc", "src/analysis/fixture.cc",
                 {{9, "perrecord-in-hotpath"}, {10, "perrecord-in-hotpath"}});
  ExpectFindings("perrecord_in_hotpath.cc", "src/cdn/fixture.cc",
                 {{9, "perrecord-in-hotpath"}, {10, "perrecord-in-hotpath"}});
}

TEST(LintCorpusTest, PerRecordScopedToHotPathLayers) {
  // The adapters themselves live in src/trace/, and tools may use them for
  // compatibility; neither scope is flagged.
  ExpectFindings("perrecord_in_hotpath.cc", "src/trace/fixture.cc", {});
  ExpectFindings("perrecord_in_hotpath.cc", "tools/fixture.cc", {});
}

TEST(LintFileTest, PerRecordAllowForAdapters) {
  // A compatibility shim inside a hot-path layer suppresses with the
  // standard escape hatch.
  const std::string source =
      "#include \"trace/block.h\"\n"
      "void Shim(atlas::trace::PerRecordSource& s) {\n"
      "  // atlas-lint: allow(perrecord-in-hotpath)  adapter, not a hot loop\n"
      "  while (s.NextRecord() != nullptr) {\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/analysis/fixture.cc", source).empty());
}

TEST(LintCorpusTest, CkptUnversionedBlob) {
  // Only raw writes inside SaveState bodies fire; declarations and writes
  // in unrelated functions pass.
  ExpectFindings("ckpt_unversioned_blob.cc", "src/cdn/fixture.cc",
                 {{9, "ckpt-unversioned-blob"}, {10, "ckpt-unversioned-blob"}});
}

TEST(LintCorpusTest, CkptUnversionedBlobScopedOutsideCkpt) {
  // The codec itself (src/ckpt/) is the one place raw byte I/O is allowed.
  ExpectFindings("ckpt_unversioned_blob.cc", "src/ckpt/fixture.cc", {});
}

TEST(LintFileTest, SiblingHeaderDeclarationsResolve) {
  // A member declared only in the header must still be recognized as an
  // unordered container when the .cc ranges over it.
  const std::string header =
      "#pragma once\n"
      "#include <unordered_map>\n"
      "struct S {\n"
      "  std::unordered_map<int, int> m_;\n"
      "  long t = 0;\n"
      "  void F();\n"
      "};\n";
  const std::string source =
      "#include \"fixture.h\"\n"
      "void S::F() {\n"
      "  for (const auto& kv : m_) t += kv.second;\n"
      "}\n";
  const auto findings = LintFile("src/stats/fixture.cc", source, header);
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_EQ(findings[0].rule, "unordered-iter");
}

TEST(LintFileTest, CommentedAndQuotedTokensDoNotFire) {
  const std::string source =
      "// rand() and new in a comment\n"
      "/* std::random_device too */\n"
      "const char* kDoc = \"time(nullptr) new delete std::mutex\";\n";
  EXPECT_TRUE(LintFile("src/util/fixture.cc", source).empty());
}

TEST(LintRegistryTest, RuleNamesAreCompleteAndCovered) {
  const std::set<std::string> expected = {
      "nondet-random-device", "nondet-rand",        "nondet-time",
      "nondet-system-clock",  "raw-new-delete",     "narrow-byte-counter",
      "raw-std-mutex",        "mutex-unannotated",  "missing-pragma-once",
      "unordered-iter",       "tracebuffer-in-cdn", "ckpt-unversioned-blob",
      "perrecord-in-hotpath", "unchecked-index-cast",
  };
  const auto names = RuleNames();
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()), expected);
}

TEST(LintFormatTest, FormatFindingIsClickable) {
  const Finding f{"src/cdn/cache.cc", 12, "raw-new-delete", "raw new"};
  EXPECT_EQ(FormatFinding(f), "src/cdn/cache.cc:12: [raw-new-delete] raw new");
}

TEST(LintTreeTest, LiveTreeIsClean) {
  const auto findings = LintTree(ATLAS_SOURCE_DIR);
  EXPECT_TRUE(findings.empty()) << Dump(findings);
}

}  // namespace
}  // namespace atlas::lint
