#include "stats/summary.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace atlas::stats {
namespace {

TEST(SummaryTest, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(SummaryTest, SingleValue) {
  Summary s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SummaryTest, KnownMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryTest, NegativeValues) {
  Summary s;
  s.Add(-3.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
}

TEST(SummaryTest, MergeMatchesSinglePass) {
  util::Rng rng(5);
  Summary all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextGaussian(3.0, 2.0);
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryTest, MergeWithEmpty) {
  Summary a, b;
  a.Add(1.0);
  a.Merge(b);  // no-op
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);  // copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(SummaryTest, NumericalStabilityLargeOffset) {
  // Welford should not lose the variance of values near a huge mean.
  Summary s;
  const double base = 1e12;
  for (double v : {base + 1, base + 2, base + 3}) s.Add(v);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-3);
}

TEST(SummaryTest, ToStringContainsFields) {
  Summary s;
  s.Add(1);
  s.Add(2);
  const std::string str = s.ToString();
  EXPECT_NE(str.find("n=2"), std::string::npos);
  EXPECT_NE(str.find("mean=1.5"), std::string::npos);
}

}  // namespace
}  // namespace atlas::stats
