#include "util/flags.h"

#include <gtest/gtest.h>

namespace atlas::util {
namespace {

std::vector<const char*> Argv(std::initializer_list<const char*> args) {
  std::vector<const char*> v = {"prog"};
  v.insert(v.end(), args);
  return v;
}

TEST(FlagsTest, DefaultsApply) {
  Flags f;
  f.DefineInt("n", 5, "count");
  f.DefineDouble("scale", 0.5, "scale");
  f.DefineBool("verbose", false, "talk");
  f.DefineString("name", "x", "label");
  const auto argv = Argv({});
  f.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(f.GetInt("n"), 5);
  EXPECT_DOUBLE_EQ(f.GetDouble("scale"), 0.5);
  EXPECT_FALSE(f.GetBool("verbose"));
  EXPECT_EQ(f.GetString("name"), "x");
}

TEST(FlagsTest, EqualsSyntax) {
  Flags f;
  f.DefineInt("n", 0, "");
  f.DefineString("s", "", "");
  const auto argv = Argv({"--n=7", "--s=hello"});
  f.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(f.GetInt("n"), 7);
  EXPECT_EQ(f.GetString("s"), "hello");
}

TEST(FlagsTest, SpaceSyntax) {
  Flags f;
  f.DefineDouble("scale", 0, "");
  const auto argv = Argv({"--scale", "0.25"});
  f.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_DOUBLE_EQ(f.GetDouble("scale"), 0.25);
}

TEST(FlagsTest, ScientificNotationForInts) {
  Flags f;
  f.DefineInt("requests", 0, "");
  const auto argv = Argv({"--requests=1e6"});
  f.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(f.GetInt("requests"), 1000000);
}

TEST(FlagsTest, BoolForms) {
  Flags f;
  f.DefineBool("a", false, "");
  f.DefineBool("b", true, "");
  f.DefineBool("c", false, "");
  const auto argv = Argv({"--a", "--no-b", "--c=true"});
  f.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(f.GetBool("a"));
  EXPECT_FALSE(f.GetBool("b"));
  EXPECT_TRUE(f.GetBool("c"));
}

TEST(FlagsTest, Positional) {
  Flags f;
  const auto argv = Argv({"one", "two"});
  f.Parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "one");
}

TEST(FlagsTest, UnknownFlagThrows) {
  Flags f;
  const auto argv = Argv({"--bogus=1"});
  EXPECT_THROW(f.Parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(FlagsTest, MissingValueThrows) {
  Flags f;
  f.DefineInt("n", 0, "");
  const auto argv = Argv({"--n"});
  EXPECT_THROW(f.Parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(FlagsTest, HelpRequested) {
  Flags f;
  const auto argv = Argv({"--help"});
  f.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(f.help_requested());
}

TEST(FlagsTest, TypeMismatchThrows) {
  Flags f;
  f.DefineInt("n", 0, "");
  const auto argv = Argv({});
  f.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_THROW(f.GetString("n"), std::invalid_argument);
  EXPECT_THROW(f.GetInt("missing"), std::invalid_argument);
}

TEST(FlagsTest, UsageMentionsFlagsAndDefaults) {
  Flags f;
  f.DefineInt("requests", 100, "number of requests");
  const std::string usage = f.Usage("prog");
  EXPECT_NE(usage.find("--requests"), std::string::npos);
  EXPECT_NE(usage.find("100"), std::string::npos);
  EXPECT_NE(usage.find("number of requests"), std::string::npos);
}

}  // namespace
}  // namespace atlas::util
