// atlas::energy end to end: merge algebra (associativity, zero identity)
// and checkpoint round-trips for SimulatorResult and EnergyAccumulator,
// bit-identical joules/dollars across thread counts and across kill+resume,
// the observation-only proof (the epoch observer cannot move a pinned
// golden trace digest), and a golden energy report for every scenario
// file shipped under scenarios/.
#include "energy/model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "cdn/scenario_spec.h"
#include "ckpt/checkpoint.h"
#include "energy/accumulator.h"
#include "energy/run.h"
#include "trace/sink.h"
#include "trace/stream.h"
#include "util/hash.h"
#include "util/logging.h"

namespace atlas {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

std::string SpecPath(const std::string& name) {
  return std::string(ATLAS_SOURCE_DIR) + "/scenarios/" + name;
}

// --- counter fixtures ------------------------------------------------------

cdn::CacheStats MakeCacheStats(std::uint64_t base) {
  cdn::CacheStats s;
  s.hits = base + 1;
  s.misses = base + 2;
  s.inserts = base + 3;
  s.evictions = base + 4;
  s.rejected = base + 5;
  s.hit_bytes = base * 1000 + 6;
  s.miss_bytes = base * 1000 + 7;
  return s;
}

cdn::SimulatorResult MakeResult(std::uint64_t base) {
  cdn::SimulatorResult r;
  r.edge_stats = MakeCacheStats(base);
  for (int d = 0; d < 4; ++d) {
    r.per_dc_stats.push_back(MakeCacheStats(base + 10 * (d + 1)));
  }
  r.origin.fetches = base + 50;
  r.origin.bytes = base * 2000 + 51;
  r.records = base + 52;
  r.peer_fetches = base + 53;
  r.peer_bytes = base + 54;
  r.browser_fresh_hits = base + 55;
  r.revalidations = base + 56;
  r.pushed_objects = base + 57;
  r.pushed_bytes = base + 58;
  return r;
}

energy::DcCounters MakeDcCounters(std::uint64_t base) {
  energy::DcCounters c;
  c.hits = base + 1;
  c.misses = base + 2;
  c.hit_bytes = base * 1000 + 3;
  c.miss_bytes = base * 1000 + 4;
  c.origin_fetches = base + 5;
  c.origin_bytes = base * 2000 + 6;
  c.peer_fetches = base + 7;
  c.peer_bytes = base + 8;
  c.pushed_bytes = base + 9;
  c.revalidations = base + 10;
  c.resident_kib_ms = base * 3000 + 11;
  return c;
}

void ExpectCacheStatsEq(const cdn::CacheStats& a, const cdn::CacheStats& b,
                        const std::string& what) {
  EXPECT_EQ(a.hits, b.hits) << what;
  EXPECT_EQ(a.misses, b.misses) << what;
  EXPECT_EQ(a.inserts, b.inserts) << what;
  EXPECT_EQ(a.evictions, b.evictions) << what;
  EXPECT_EQ(a.rejected, b.rejected) << what;
  EXPECT_EQ(a.hit_bytes, b.hit_bytes) << what;
  EXPECT_EQ(a.miss_bytes, b.miss_bytes) << what;
}

void ExpectResultEq(const cdn::SimulatorResult& a,
                    const cdn::SimulatorResult& b, const std::string& what) {
  ExpectCacheStatsEq(a.edge_stats, b.edge_stats, what + " edge");
  ASSERT_EQ(a.per_dc_stats.size(), b.per_dc_stats.size()) << what;
  for (std::size_t d = 0; d < a.per_dc_stats.size(); ++d) {
    ExpectCacheStatsEq(a.per_dc_stats[d], b.per_dc_stats[d],
                       what + " dc" + std::to_string(d));
  }
  EXPECT_EQ(a.origin.fetches, b.origin.fetches) << what;
  EXPECT_EQ(a.origin.bytes, b.origin.bytes) << what;
  EXPECT_EQ(a.records, b.records) << what;
  EXPECT_EQ(a.peer_fetches, b.peer_fetches) << what;
  EXPECT_EQ(a.peer_bytes, b.peer_bytes) << what;
  EXPECT_EQ(a.browser_fresh_hits, b.browser_fresh_hits) << what;
  EXPECT_EQ(a.revalidations, b.revalidations) << what;
  EXPECT_EQ(a.pushed_objects, b.pushed_objects) << what;
  EXPECT_EQ(a.pushed_bytes, b.pushed_bytes) << what;
}

// --- energy runs -----------------------------------------------------------

struct EnergySpecRun {
  std::string bytes;
  std::uint64_t records = 0;
  energy::EnergyRunResult run;
};

EnergySpecRun RunWithEnergy(const cdn::ScenarioSpec& spec, int threads) {
  std::ostringstream out;
  trace::TraceWriter writer(out);
  trace::WriterSink sink(writer);
  EnergySpecRun r;
  r.run = energy::StreamScenarioWithEnergy(spec, sink, threads);
  writer.Finish();
  r.bytes = out.str();
  r.records = writer.written();
  return r;
}

// Exact double equality on purpose: the determinism contract is
// bit-identical joules/dollars, not approximately-equal ones.
void ExpectReportBitIdentical(const energy::EnergyReport& a,
                              const energy::EnergyReport& b,
                              const std::string& what) {
  EXPECT_EQ(a.span_ms, b.span_ms) << what;
  EXPECT_EQ(a.epochs, b.epochs) << what;
  ASSERT_EQ(a.dcs.size(), b.dcs.size()) << what;
  for (std::size_t i = 0; i < a.dcs.size(); ++i) {
    EXPECT_EQ(a.dcs[i].dc, b.dcs[i].dc) << what;
    EXPECT_EQ(a.dcs[i].served_bytes, b.dcs[i].served_bytes) << what;
    EXPECT_EQ(a.dcs[i].duty, b.dcs[i].duty) << what;
    EXPECT_EQ(a.dcs[i].energy.server_j, b.dcs[i].energy.server_j) << what;
    EXPECT_EQ(a.dcs[i].energy.network_j, b.dcs[i].energy.network_j) << what;
    EXPECT_EQ(a.dcs[i].energy.storage_j, b.dcs[i].energy.storage_j) << what;
    EXPECT_EQ(a.dcs[i].energy.electricity_usd, b.dcs[i].energy.electricity_usd)
        << what;
    EXPECT_EQ(a.dcs[i].energy.transit_usd, b.dcs[i].energy.transit_usd)
        << what;
  }
  EXPECT_EQ(a.total.server_j, b.total.server_j) << what;
  EXPECT_EQ(a.total.network_j, b.total.network_j) << what;
  EXPECT_EQ(a.total.storage_j, b.total.storage_j) << what;
  EXPECT_EQ(a.total.electricity_usd, b.total.electricity_usd) << what;
  EXPECT_EQ(a.total.transit_usd, b.total.transit_usd) << what;
}

class EnergyTest : public ::testing::Test {
 protected:
  void SetUp() override { util::SetLogLevel(util::LogLevel::kWarn); }
  void TearDown() override { util::SetLogLevel(util::LogLevel::kInfo); }
};

// ---------------------------------------------------------------------------
// Merge algebra: SimulatorResult.

TEST_F(EnergyTest, SimulatorResultMergeIsAssociative) {
  const auto a = MakeResult(100);
  const auto b = MakeResult(200);
  const auto c = MakeResult(300);

  cdn::SimulatorResult left = a;
  left.Merge(b);
  left.Merge(c);

  cdn::SimulatorResult bc = b;
  bc.Merge(c);
  cdn::SimulatorResult right = a;
  right.Merge(bc);

  ExpectResultEq(left, right, "(a+b)+c vs a+(b+c)");
}

TEST_F(EnergyTest, SimulatorResultMergeHasZeroIdentity) {
  const auto a = MakeResult(100);
  cdn::SimulatorResult zero;

  cdn::SimulatorResult left = a;
  left.Merge(zero);
  ExpectResultEq(left, a, "a+0");

  cdn::SimulatorResult right = zero;
  right.Merge(a);
  ExpectResultEq(right, a, "0+a");
}

TEST_F(EnergyTest, SimulatorResultCkptRoundTripPreservesAllCounters) {
  const auto original = MakeResult(424242);
  std::stringstream stream;
  {
    ckpt::Writer w(stream);
    w.BeginSection("test.result", 1);
    original.SaveState(w);
    w.EndSection();
    w.Finish();
  }
  ckpt::Reader r(stream);
  r.BeginSection("test.result", 1);
  cdn::SimulatorResult restored;
  restored.RestoreState(r);
  r.EndSection();
  ExpectResultEq(restored, original, "ckpt round-trip");
}

// ---------------------------------------------------------------------------
// Merge algebra: energy counters.

TEST_F(EnergyTest, DcCountersMergeIsAssociativeWithZeroIdentity) {
  const auto a = MakeDcCounters(7);
  const auto b = MakeDcCounters(31);
  const auto c = MakeDcCounters(101);

  energy::DcCounters left = a;
  left.Merge(b);
  left.Merge(c);
  energy::DcCounters bc = b;
  bc.Merge(c);
  energy::DcCounters right = a;
  right.Merge(bc);
  EXPECT_EQ(left, right);

  energy::DcCounters with_zero = a;
  with_zero.Merge(energy::DcCounters{});
  EXPECT_EQ(with_zero, a);
}

cdn::EpochSample MakeEpochSample(std::int64_t start_ms, std::int64_t end_ms,
                                 std::uint64_t base, int ndc) {
  cdn::EpochSample s;
  s.start_ms = start_ms;
  s.end_ms = end_ms;
  for (int d = 0; d < ndc; ++d) {
    cdn::EpochDcSample dc;
    dc.dc = d;
    dc.edge = MakeCacheStats(base + 10 * (d + 1));
    dc.origin.fetches = base + d;
    dc.origin.bytes = base * 100 + d;
    dc.peer_fetches = base + 2 * d;
    dc.peer_bytes = base * 200 + d;
    dc.revalidations = base + 3 * d;
    dc.pushed_bytes = base * 300 + d;
    dc.resident_bytes = (base + 4 * static_cast<std::uint64_t>(d)) << 10;
    s.dcs.push_back(dc);
  }
  return s;
}

TEST_F(EnergyTest, AccumulatorMergeMatchesSequentialObservation) {
  // Observing samples 1..4 in one accumulator equals observing 1..2 and
  // 3..4 in two shards and merging — the shard-merge contract.
  energy::EnergyAccumulator whole, first, second;
  for (int i = 0; i < 4; ++i) {
    const auto sample = MakeEpochSample(i * 1000, (i + 1) * 1000,
                                        100 * (i + 1), /*ndc=*/3);
    whole.Observe(sample);
    (i < 2 ? first : second).Observe(sample);
  }
  energy::EnergyAccumulator merged = first;
  merged.Merge(second);
  EXPECT_EQ(merged, whole);

  energy::EnergyAccumulator with_zero = whole;
  with_zero.Merge(energy::EnergyAccumulator{});
  EXPECT_EQ(with_zero, whole);
}

TEST_F(EnergyTest, AccumulatorCkptRoundTripIsExact) {
  energy::EnergyAccumulator original;
  for (int i = 0; i < 3; ++i) {
    original.Observe(
        MakeEpochSample(i * 60000, (i + 1) * 60000, 77 * (i + 1), 4));
  }
  std::stringstream stream;
  {
    ckpt::Writer w(stream);
    w.BeginSection("energy.accumulator", 1);
    original.SaveState(w);
    w.EndSection();
    w.Finish();
  }
  ckpt::Reader r(stream);
  r.BeginSection("energy.accumulator", 1);
  energy::EnergyAccumulator restored;
  restored.RestoreState(r);
  r.EndSection();
  EXPECT_EQ(restored, original);

  const energy::EnergyModel model{cdn::EnergySpec{}};
  ExpectReportBitIdentical(restored.Report(model), original.Report(model),
                           "restored report");
}

// ---------------------------------------------------------------------------
// Determinism: thread counts, kill+resume, observation-only.

TEST_F(EnergyTest, JoulesAreBitIdenticalAcrossThreadCounts) {
  const auto spec =
      cdn::ScenarioSpec::ParseFile(SpecPath("paper_study.toml"));
  const EnergySpecRun golden = RunWithEnergy(spec, 1);
  for (const int threads : kThreadCounts) {
    const EnergySpecRun run = RunWithEnergy(spec, threads);
    EXPECT_EQ(run.run.accumulator, golden.run.accumulator)
        << "threads=" << threads;
    ExpectReportBitIdentical(run.run.report, golden.run.report,
                             "threads=" + std::to_string(threads));
    EXPECT_EQ(util::Fnv1a64(run.bytes), util::Fnv1a64(golden.bytes))
        << "threads=" << threads;
  }
}

TEST_F(EnergyTest, KilledEnergyRunResumesWithIdenticalJoules) {
  const auto spec = cdn::ScenarioSpec::ParseFile(SpecPath("takedown.toml"));
  const EnergySpecRun golden = RunWithEnergy(spec, 2);

  for (const int threads : kThreadCounts) {
    const std::string tag = std::to_string(threads);
    const std::string path =
        ::testing::TempDir() + "/atlas_energy_kr_" + tag + ".v2";
    const std::string ckpt_path =
        ::testing::TempDir() + "/atlas_energy_kr_" + tag + ".ckpt";
    {
      std::ofstream out(path, std::ios::binary);
      trace::TraceWriter writer(out);
      trace::WriterSink sink(writer);
      cdn::CheckpointOptions opts;
      opts.every_epochs = 1;
      opts.path = ckpt_path;
      opts.save_extra = [&](ckpt::Writer& w) { writer.SaveState(w); };
      opts.after_save = [](std::uint64_t done) { return done < 60; };
      energy::StreamScenarioWithEnergy(spec, sink, threads, opts);
    }
    auto snapshot = ckpt::ReadCheckpointFile(ckpt_path);
    trace::ResumedTraceFile resumed(path, snapshot);
    trace::WriterSink sink(resumed.writer());
    cdn::CheckpointOptions opts;
    opts.resume = &snapshot;
    opts.save_extra = [&](ckpt::Writer& w) { resumed.writer().SaveState(w); };
    const auto run =
        energy::StreamScenarioWithEnergy(spec, sink, threads, opts);
    resumed.writer().Finish();

    EXPECT_EQ(run.accumulator, golden.run.accumulator) << "threads=" << threads;
    ExpectReportBitIdentical(run.report, golden.run.report,
                             "resumed threads=" + tag);
  }
}

TEST_F(EnergyTest, EnergyOffCheckpointRefusesEnergyResume) {
  // A snapshot written without the accumulator carries no joules for the
  // barriers it covers; resuming it with energy on must fail loudly.
  const auto spec = cdn::ScenarioSpec::ParseFile(SpecPath("takedown.toml"));
  const std::string path = ::testing::TempDir() + "/atlas_energy_off.v2";
  const std::string ckpt_path = ::testing::TempDir() + "/atlas_energy_off.ckpt";
  {
    std::ofstream out(path, std::ios::binary);
    trace::TraceWriter writer(out);
    trace::WriterSink sink(writer);
    cdn::CheckpointOptions opts;
    opts.every_epochs = 1;
    opts.path = ckpt_path;
    opts.save_extra = [&](ckpt::Writer& w) { writer.SaveState(w); };
    opts.after_save = [](std::uint64_t done) { return done < 3; };
    cdn::StreamScenario(spec, sink, 2, opts);
  }
  auto snapshot = ckpt::ReadCheckpointFile(ckpt_path);
  trace::ResumedTraceFile resumed(path, snapshot);
  trace::WriterSink sink(resumed.writer());
  cdn::CheckpointOptions opts;
  opts.resume = &snapshot;
  try {
    energy::StreamScenarioWithEnergy(spec, sink, 2, opts);
    FAIL() << "energy resume of an energy-off checkpoint must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("energy.accumulator"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Golden energy reports: every shipped scenario, pinned totals.
//
// The joule totals are pinned as llround(total joules) and the dollar
// totals as llround(total USD * 100) — exact for the fixed-order double
// folds Report() performs. The observation-only proof rides along: each
// energy run's trace digest must equal the digest pinned in
// scenario_spec_test.cc's kGoldenScenarios for the same file.
struct GoldenEnergy {
  const char* file;
  std::uint64_t trace_digest;  // == kGoldenScenarios entry for this file
  std::int64_t total_joules;
  std::int64_t total_usd_cents;
};
constexpr GoldenEnergy kGoldenEnergy[] = {
    {"paper_study.toml", 0xef475dbcd9a33c2dULL, 366192680, 1205},
    {"flash_crowd.toml", 0x46f44269337038c8ULL, 364235387, 1149},
    {"takedown.toml", 0xf8ec9a7a9514ef6fULL, 364640927, 1184},
    {"dc_outage.toml", 0xf73728864137927aULL, 364143490, 1144},
    {"cache_flush.toml", 0xded9a1d09f02cba8ULL, 364686962, 1187},
    {"live_event.toml", 0x8bcb964a1d3a3ef7ULL, 361396372, 1130},
};

TEST_F(EnergyTest, EveryShippedScenarioReproducesItsGoldenEnergyReport) {
  for (const auto& golden : kGoldenEnergy) {
    const auto spec = cdn::ScenarioSpec::ParseFile(SpecPath(golden.file));
    const EnergySpecRun run = RunWithEnergy(spec, 2);
    EXPECT_EQ(util::Fnv1a64(run.bytes), golden.trace_digest)
        << golden.file << " (observer moved the trace)";
    EXPECT_EQ(std::llround(run.run.report.total.TotalJoules()),
              golden.total_joules)
        << golden.file;
    EXPECT_EQ(std::llround(run.run.report.total.TotalUsd() * 100.0),
              golden.total_usd_cents)
        << golden.file;
  }
}

}  // namespace
}  // namespace atlas
