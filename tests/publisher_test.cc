#include "trace/publisher.h"

#include <gtest/gtest.h>

namespace atlas::trace {
namespace {

TEST(PublisherRegistryTest, RegisterAssignsSequentialIds) {
  PublisherRegistry reg;
  EXPECT_EQ(reg.Register("A", SiteKind::kAdultVideo), 0u);
  EXPECT_EQ(reg.Register("B", SiteKind::kNonAdult), 1u);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.Get(0).name, "A");
  EXPECT_TRUE(reg.Get(0).is_adult());
  EXPECT_FALSE(reg.Get(1).is_adult());
}

TEST(PublisherRegistryTest, DuplicateNameThrows) {
  PublisherRegistry reg;
  reg.Register("A", SiteKind::kAdultVideo);
  EXPECT_THROW(reg.Register("A", SiteKind::kAdultImage),
               std::invalid_argument);
}

TEST(PublisherRegistryTest, UnknownIdThrows) {
  PublisherRegistry reg;
  EXPECT_THROW(reg.Get(0), std::out_of_range);
}

TEST(PublisherRegistryTest, FindByName) {
  PublisherRegistry reg;
  reg.Register("V-1", SiteKind::kAdultVideo);
  EXPECT_EQ(reg.FindByName("V-1").value(), 0u);
  EXPECT_FALSE(reg.FindByName("missing").has_value());
}

TEST(PublisherRegistryTest, PaperSites) {
  const auto reg = PublisherRegistry::PaperSites();
  EXPECT_EQ(reg.size(), 6u);
  EXPECT_EQ(reg.Get(*reg.FindByName("V-1")).kind, SiteKind::kAdultVideo);
  EXPECT_EQ(reg.Get(*reg.FindByName("V-2")).kind, SiteKind::kAdultVideo);
  EXPECT_EQ(reg.Get(*reg.FindByName("P-1")).kind, SiteKind::kAdultImage);
  EXPECT_EQ(reg.Get(*reg.FindByName("P-2")).kind, SiteKind::kAdultImage);
  EXPECT_EQ(reg.Get(*reg.FindByName("S-1")).kind, SiteKind::kAdultSocial);
  EXPECT_EQ(reg.Get(*reg.FindByName("N-1")).kind, SiteKind::kNonAdult);
  EXPECT_EQ(reg.AdultIds().size(), 5u);
}

TEST(SiteKindTest, Strings) {
  EXPECT_STREQ(ToString(SiteKind::kAdultVideo), "adult-video");
  EXPECT_STREQ(ToString(SiteKind::kNonAdult), "non-adult");
}

}  // namespace
}  // namespace atlas::trace
