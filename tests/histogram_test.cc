#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace atlas::stats {
namespace {

TEST(LinearHistogramTest, BinsAndBounds) {
  LinearHistogram h(0.0, 10.0, 5);
  h.Add(0.0);
  h.Add(1.9);
  h.Add(9.99);
  h.Add(-1.0);
  h.Add(10.0);  // hi is exclusive -> overflow
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(LinearHistogramTest, WeightedAdd) {
  LinearHistogram h(0, 10, 2);
  h.Add(1.0, 5);
  EXPECT_EQ(h.bin(0), 5u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(LinearHistogramTest, ModeBin) {
  LinearHistogram h(0, 3, 3);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.6);
  EXPECT_EQ(h.ModeBin(), 1u);
}

TEST(LinearHistogramTest, RejectsBadArgs) {
  EXPECT_THROW(LinearHistogram(1, 1, 5), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(0, 1, 0), std::invalid_argument);
}

TEST(LogHistogramTest, DecadeBinning) {
  LogHistogram h(1.0, 1e4, 1);  // 4 bins, one per decade
  EXPECT_EQ(h.bin_count(), 4u);
  h.Add(5);     // [1, 10)
  h.Add(50);    // [10, 100)
  h.Add(5000);  // [1000, 10000)
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(2), 0u);
  EXPECT_EQ(h.bin(3), 1u);
}

TEST(LogHistogramTest, UnderOverflow) {
  LogHistogram h(10.0, 1000.0, 2);
  h.Add(1.0);
  h.Add(0.0);
  h.Add(-5.0);
  h.Add(1e6);
  EXPECT_EQ(h.underflow(), 3u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(LogHistogramTest, BinEdgesAreGeometric) {
  LogHistogram h(1.0, 100.0, 1);
  EXPECT_NEAR(h.bin_lo(0), 1.0, 1e-9);
  EXPECT_NEAR(h.bin_hi(0), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_mid(0), std::sqrt(10.0), 1e-9);
}

TEST(LogHistogramTest, DetectsBimodalModes) {
  // Two lognormal populations a decade apart, like thumbnail vs. full-size
  // images (paper Fig. 5b).
  util::Rng rng(3);
  LogHistogram h(100.0, 1e7, 4);
  for (int i = 0; i < 5000; ++i) {
    h.Add(rng.NextLogNormal(std::log(8e3), 0.4));
    h.Add(rng.NextLogNormal(std::log(4e5), 0.4));
  }
  const auto modes = h.Modes(0.02);
  ASSERT_GE(modes.size(), 2u);
  EXPECT_GT(modes.back() / modes.front(), 10.0);
}

TEST(LogHistogramTest, UnimodalHasOneMode) {
  util::Rng rng(3);
  LogHistogram h(100.0, 1e7, 4);
  for (int i = 0; i < 5000; ++i) {
    h.Add(rng.NextLogNormal(std::log(5e4), 0.4));
  }
  EXPECT_EQ(h.Modes(0.02).size(), 1u);
}

TEST(LogHistogramTest, RenderShowsBars) {
  LogHistogram h(1.0, 100.0, 1);
  h.Add(5, 10);
  const std::string render = h.Render(20);
  EXPECT_NE(render.find('#'), std::string::npos);
}

TEST(LogHistogramTest, RejectsBadArgs) {
  EXPECT_THROW(LogHistogram(0.0, 10.0, 2), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 1.0, 2), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace atlas::stats
