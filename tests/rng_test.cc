#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace atlas::util {
namespace {

TEST(SplitMix64Test, DeterministicSequence) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, ForkDivergesFromParent) {
  Rng parent(42);
  Rng child = parent.Fork(1);
  Rng parent2(42);
  parent2.Fork(1);
  // Forking consumed parent state identically.
  EXPECT_EQ(parent.Next(), parent2.Next());
  // Child stream differs from the parent stream.
  Rng fresh(42);
  EXPECT_NE(child.Next(), fresh.Next());
}

TEST(RngTest, ForksWithDifferentTagsDiffer) {
  Rng p1(42), p2(42);
  Rng c1 = p1.Fork(1);
  Rng c2 = p2.Fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.Next() == c2.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1000000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.NextBounded(0), std::invalid_argument);
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextIntBadRangeThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.NextInt(5, 4), std::invalid_argument);
}

TEST(RngTest, NextBoolEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
    EXPECT_FALSE(rng.NextBool(-1.0));
    EXPECT_TRUE(rng.NextBool(2.0));
  }
}

TEST(RngTest, NextBoolFrequency) {
  Rng rng(5);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ExponentialRejectsBadRate) {
  Rng rng(1);
  EXPECT_THROW(rng.NextExponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.NextExponential(-1.0), std::invalid_argument);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(19);
  std::vector<double> v;
  const int n = 50001;
  for (int i = 0; i < n; ++i) v.push_back(rng.NextLogNormal(std::log(5.0), 1.0));
  std::nth_element(v.begin(), v.begin() + n / 2, v.end());
  EXPECT_NEAR(v[n / 2], 5.0, 0.3);
}

TEST(RngTest, ParetoBounds) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.NextPareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, ParetoMean) {
  // Mean = alpha x_m / (alpha - 1) for alpha > 1.
  Rng rng(23);
  double sum = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += rng.NextPareto(1.0, 3.0);
  EXPECT_NEAR(sum / n, 1.5, 0.03);
}

TEST(RngTest, WeibullMean) {
  // k=1 reduces to exponential with mean lambda.
  Rng rng(29);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextWeibull(2.0, 1.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, GeometricMean) {
  // Mean failures = (1-p)/p.
  Rng rng(31);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.NextGeometric(0.25));
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, GeometricPOneIsZero) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextGeometric(1.0), 0u);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(37);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.NextPoisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesApproximation) {
  Rng rng(37);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.NextPoisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 1.0);
}

TEST(RngTest, PoissonZero) {
  Rng rng(1);
  EXPECT_EQ(rng.NextPoisson(0.0), 0u);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(41);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextWeighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(RngTest, WeightedRejectsBadInput) {
  Rng rng(1);
  std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW(rng.NextWeighted(negative), std::invalid_argument);
  std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(rng.NextWeighted(zeros), std::invalid_argument);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleChangesOrder) {
  Rng rng(43);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

// Property: every named distribution stays deterministic under equal seeds.
class RngDeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngDeterminismTest, SameSeedSameDraws) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.NextDouble(), b.NextDouble());
    EXPECT_DOUBLE_EQ(a.NextGaussian(), b.NextGaussian());
    EXPECT_DOUBLE_EQ(a.NextExponential(1.0), b.NextExponential(1.0));
    EXPECT_EQ(a.NextPoisson(4.0), b.NextPoisson(4.0));
    EXPECT_EQ(a.NextBounded(97), b.NextBounded(97));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngDeterminismTest,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                                           ~0ULL));

}  // namespace
}  // namespace atlas::util
