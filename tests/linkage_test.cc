#include "cluster/linkage.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace atlas::cluster {
namespace {

// Three well-separated 1-D groups, encoded as a distance matrix.
DistanceMatrix ThreeGroups() {
  // Points: {0.0, 0.1, 0.2} {10.0, 10.1} {50.0}.
  const std::vector<double> pts = {0.0, 0.1, 0.2, 10.0, 10.1, 50.0};
  DistanceMatrix m(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      m.Set(i, j, std::abs(pts[i] - pts[j]));
    }
  }
  return m;
}

class LinkageParamTest : public ::testing::TestWithParam<Linkage> {};

TEST_P(LinkageParamTest, MergeCountIsLeavesMinusOne) {
  const auto dendro = AgglomerativeCluster(ThreeGroups(), GetParam());
  EXPECT_EQ(dendro.leaf_count(), 6u);
  EXPECT_EQ(dendro.merges().size(), 5u);
}

TEST_P(LinkageParamTest, HeightsNondecreasing) {
  const auto dendro = AgglomerativeCluster(ThreeGroups(), GetParam());
  for (std::size_t i = 1; i < dendro.merges().size(); ++i) {
    EXPECT_GE(dendro.merges()[i].height, dendro.merges()[i - 1].height);
  }
}

TEST_P(LinkageParamTest, RecoversThreeGroupsAtK3) {
  const auto dendro = AgglomerativeCluster(ThreeGroups(), GetParam());
  const auto labels = dendro.CutAtK(3);
  // Group members share labels; cross-group labels differ.
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[0], labels[5]);
  EXPECT_NE(labels[3], labels[5]);
  // Labels ordered by size: the triple is label 0, the pair label 1.
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[3], 1u);
  EXPECT_EQ(labels[5], 2u);
}

INSTANTIATE_TEST_SUITE_P(AllLinkages, LinkageParamTest,
                         ::testing::Values(Linkage::kSingle, Linkage::kComplete,
                                           Linkage::kAverage),
                         [](const auto& info) { return ToString(info.param); });

TEST(DendrogramTest, CutAtKExtremes) {
  const auto dendro = AgglomerativeCluster(ThreeGroups());
  const auto all_one = dendro.CutAtK(1);
  for (const auto l : all_one) EXPECT_EQ(l, 0u);
  const auto singletons = dendro.CutAtK(6);
  std::set<std::size_t> distinct(singletons.begin(), singletons.end());
  EXPECT_EQ(distinct.size(), 6u);
  EXPECT_THROW(dendro.CutAtK(0), std::invalid_argument);
  EXPECT_THROW(dendro.CutAtK(7), std::invalid_argument);
}

TEST(DendrogramTest, CutAtHeightMatchesStructure) {
  const auto dendro = AgglomerativeCluster(ThreeGroups(), Linkage::kSingle);
  // Threshold between intra-group (<= 0.2) and inter-group (>= ~9.8).
  const auto labels = dendro.CutAtHeight(1.0);
  const auto sizes = Dendrogram::ClusterSizes(labels);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 3u);
  EXPECT_EQ(sizes[1], 2u);
  EXPECT_EQ(sizes[2], 1u);
}

TEST(DendrogramTest, ClusterSizes) {
  const auto sizes = Dendrogram::ClusterSizes({0, 1, 0, 2, 0});
  EXPECT_EQ(sizes, (std::vector<std::size_t>{3, 1, 1}));
}

TEST(DendrogramTest, RenderContainsSharesAndNames) {
  const auto dendro = AgglomerativeCluster(ThreeGroups());
  const auto labels = dendro.CutAtK(3);
  const auto text = dendro.RenderClusterShares(labels, {"alpha", "beta"});
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_NE(text.find("cluster-2"), std::string::npos);  // fallback name
  EXPECT_NE(text.find("50%"), std::string::npos);
}

TEST(DendrogramTest, InvalidConstructionThrows) {
  EXPECT_THROW(Dendrogram(0, {}), std::invalid_argument);
  EXPECT_THROW(Dendrogram(3, {}), std::invalid_argument);
}

TEST(SilhouetteTest, WellSeparatedScoresHigh) {
  const auto dendro = AgglomerativeCluster(ThreeGroups());
  const auto labels = dendro.CutAtK(3);
  EXPECT_GT(SilhouetteScore(ThreeGroups(), labels), 0.8);
}

TEST(SilhouetteTest, RandomLabelsScoreLow) {
  const auto good = AgglomerativeCluster(ThreeGroups()).CutAtK(3);
  const std::vector<std::size_t> bad = {0, 1, 2, 0, 1, 2};
  EXPECT_GT(SilhouetteScore(ThreeGroups(), good),
            SilhouetteScore(ThreeGroups(), bad));
}

TEST(SilhouetteTest, SingleClusterIsZero) {
  const std::vector<std::size_t> one(6, 0);
  EXPECT_DOUBLE_EQ(SilhouetteScore(ThreeGroups(), one), 0.0);
}

TEST(SilhouetteTest, MismatchedLabelsThrow) {
  EXPECT_THROW(SilhouetteScore(ThreeGroups(), {0, 1}), std::invalid_argument);
}

TEST(AgglomerativeClusterTest, LargerRandomInputStaysConsistent) {
  util::Rng rng(3);
  const std::size_t n = 60;
  std::vector<double> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back(rng.NextGaussian(i < 30 ? 0.0 : 100.0, 1.0));
  }
  DistanceMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      m.Set(i, j, std::abs(pts[i] - pts[j]));
    }
  }
  const auto labels = AgglomerativeCluster(m, Linkage::kAverage).CutAtK(2);
  for (std::size_t i = 1; i < 30; ++i) EXPECT_EQ(labels[i], labels[0]);
  for (std::size_t i = 31; i < n; ++i) EXPECT_EQ(labels[i], labels[30]);
  EXPECT_NE(labels[0], labels[30]);
}

}  // namespace
}  // namespace atlas::cluster
