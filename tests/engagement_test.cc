#include "analysis/engagement.h"

#include <gtest/gtest.h>

#include "analysis_fixtures.h"
#include "cdn/simulator.h"

namespace atlas::analysis {
namespace {

using testing::MakeRecord;
using testing::RecordSpec;

TEST(EngagementTest, CountsUsersAndRequestsPerObject) {
  trace::TraceBuffer buf;
  // Object 1: user 1 requests it 20 times (addicted); object 2: 4 distinct
  // users once each (viral).
  for (int i = 0; i < 20; ++i) {
    buf.Add(MakeRecord({.t = i, .url = 1, .user = 1,
                        .type = trace::FileType::kMp4}));
  }
  for (std::uint64_t u = 1; u <= 4; ++u) {
    buf.Add(MakeRecord({.t = static_cast<std::int64_t>(100 + u), .url = 2,
                        .user = u, .type = trace::FileType::kJpg}));
  }
  const auto result = ComputeEngagement(buf, "X");
  ASSERT_EQ(result.objects.size(), 2u);
  // Sorted by requests: object 1 first.
  EXPECT_EQ(result.objects[0].url_hash, 1u);
  EXPECT_EQ(result.objects[0].requests, 20u);
  EXPECT_EQ(result.objects[0].unique_users, 1u);
  EXPECT_EQ(result.objects[0].max_requests_per_user, 20u);
  EXPECT_EQ(result.objects[1].unique_users, 4u);
  EXPECT_DOUBLE_EQ(result.objects[1].RequestsPerUser(), 1.0);
  EXPECT_EQ(result.addicted_objects, 1u);
  EXPECT_EQ(result.viral_objects, 1u);
}

TEST(EngagementTest, Over10Fractions) {
  trace::TraceBuffer buf;
  for (int i = 0; i < 11; ++i) {
    buf.Add(MakeRecord({.t = i, .url = 1, .user = 1,
                        .type = trace::FileType::kMp4}));
  }
  buf.Add(MakeRecord({.t = 100, .url = 2, .user = 1,
                      .type = trace::FileType::kMp4}));
  buf.Add(MakeRecord({.t = 101, .url = 3, .user = 1,
                      .type = trace::FileType::kJpg}));
  const auto result = ComputeEngagement(buf, "X");
  EXPECT_DOUBLE_EQ(result.video_frac_over_10, 0.5);
  EXPECT_DOUBLE_EQ(result.image_frac_over_10, 0.0);
}

TEST(EngagementTest, AddictedRatioConfigurable) {
  trace::TraceBuffer buf;
  for (int i = 0; i < 4; ++i) {
    buf.Add(MakeRecord({.t = i, .url = 1, .user = 1}));
  }
  EXPECT_EQ(ComputeEngagement(buf, "X", 3.0).addicted_objects, 1u);
  EXPECT_EQ(ComputeEngagement(buf, "X", 5.0).addicted_objects, 0u);
}

TEST(EngagementTest, EmptyTraceSafe) {
  const auto result = ComputeEngagement(trace::TraceBuffer{}, "E");
  EXPECT_TRUE(result.objects.empty());
  EXPECT_DOUBLE_EQ(result.video_frac_over_10, 0.0);
}

// Closed loop (Figs. 13-14): the generator's addiction machinery produces
// video objects with far more repeat accesses than image objects, matching
// "at least 10% of video objects have more than 10 requests per unique
// user" vs. "<1% of image objects".
TEST(EngagementClosedLoopTest, VideoAddictionExceedsImage) {
  cdn::SimulatorConfig config;
  const auto v1 = cdn::SimulateSite(synth::SiteProfile::V1(0.02), 0, config, 5);
  const auto p1 = cdn::SimulateSite(synth::SiteProfile::P1(0.02), 1, config, 5);
  const auto ev = ComputeEngagement(v1.trace, "V-1");
  const auto ep = ComputeEngagement(p1.trace, "P-1");
  EXPECT_GT(ev.video_frac_over_10, 0.10);
  EXPECT_LT(ep.image_frac_over_10, 0.05);
  EXPECT_GT(ev.video_frac_over_10, ep.image_frac_over_10 * 3.0);
}

}  // namespace
}  // namespace atlas::analysis
