// Sharded simulation engine contract (cdn/engine.h):
//
//   1. the merged trace is byte-identical at 1, 2, and 8 worker threads;
//   2. it is byte-identical to the pre-sharding sequential simulator — the
//      pinned digests below were captured from the monolithic
//      per-site-then-stable-sort implementation before the engine existed,
//      with peer fill and push enabled;
//   3. the epoch length (SimulatorConfig::epoch_ms) never changes a trace
//      byte — only the peer-fill/origin split of miss traffic;
//   4. streaming into a v2 TraceWriter produces the same bytes as the
//      buffered legacy path, within a bounded memory footprint.
#include "cdn/engine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cdn/scenario.h"
#include "cdn/simulator.h"
#include "synth/site_profile.h"
#include "trace/sink.h"
#include "trace/stream.h"
#include "trace/trace_io.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/mem.h"
#include "util/par.h"

namespace atlas {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

// Pre-refactor golden digests: FNV-1a over the v1-serialized trace bytes,
// captured from the sequential simulator at the commit before the sharded
// engine landed. If one of these moves, the engine no longer reproduces
// the monolithic simulator byte for byte — that is a correctness bug, not
// a tolerable drift; update only for a deliberate generator/simulator
// change, and say so in the commit message.
constexpr std::uint64_t kScenarioMergedDigest = 0x564df37d376cf36aULL;
constexpr std::size_t kScenarioMergedRecords = 53664;
constexpr std::uint64_t kSiteV1Digest = 0x4c3e02e470f4b91aULL;
constexpr std::size_t kSiteV1Records = 27364;
constexpr std::uint64_t kSiteP2MultiDcDigest = 0xf162ed83e76a57deULL;
constexpr std::size_t kSiteP2MultiDcRecords = 1720;

cdn::SimulatorConfig GoldenConfig() {
  cdn::SimulatorConfig config;
  config.topology.edge_capacity_bytes = 256ULL << 20;
  config.peer_fill = true;
  config.push.enabled = true;
  config.push.top_n = 100;
  return config;
}

std::uint64_t Digest(const trace::TraceBuffer& buffer) {
  std::ostringstream out;
  trace::WriteBinary(buffer, out);
  return util::Fnv1a64(out.str());
}

TEST(EngineGoldenTest, ScenarioMergedMatchesSequentialAtAnyThreadCount) {
  util::SetLogLevel(util::LogLevel::kWarn);
  for (const int threads : kThreadCounts) {
    const cdn::Scenario scenario(synth::SiteProfile::PaperAdultSites(0.01),
                                 GoldenConfig(), 42, threads);
    trace::TraceBuffer merged;
    trace::BufferSink sink(merged);
    scenario.StreamMerged(sink);
    ASSERT_EQ(merged.size(), kScenarioMergedRecords) << "threads=" << threads;
    EXPECT_EQ(Digest(merged), kScenarioMergedDigest) << "threads=" << threads;
  }
}

TEST(EngineGoldenTest, SingleSiteMatchesSequential) {
  util::SetLogLevel(util::LogLevel::kWarn);
  const auto result =
      cdn::SimulateSite(synth::SiteProfile::V1(0.01), 3, GoldenConfig(), 99);
  ASSERT_EQ(result.trace.size(), kSiteV1Records);
  EXPECT_EQ(Digest(result.trace), kSiteV1Digest);
  EXPECT_EQ(result.records, kSiteV1Records);
}

TEST(EngineGoldenTest, MultiDcTopologyMatchesSequential) {
  util::SetLogLevel(util::LogLevel::kWarn);
  cdn::SimulatorConfig config;
  config.topology.edge_capacity_bytes = 128ULL << 20;
  config.topology.dcs_per_continent = 2;
  config.push.enabled = true;
  config.push.top_n = 50;
  const auto result =
      cdn::SimulateSite(synth::SiteProfile::P2(0.01), 5, config, 7);
  ASSERT_EQ(result.trace.size(), kSiteP2MultiDcRecords);
  EXPECT_EQ(Digest(result.trace), kSiteP2MultiDcDigest);
}

TEST(EngineTest, EpochLengthNeverChangesTraceBytes) {
  util::SetLogLevel(util::LogLevel::kWarn);
  for (const std::int64_t epoch_ms :
       {15 * 60 * 1000LL, 3600 * 1000LL, 6 * 3600 * 1000LL}) {
    auto config = GoldenConfig();
    config.epoch_ms = epoch_ms;
    const auto result =
        cdn::SimulateSite(synth::SiteProfile::V1(0.01), 3, config, 99);
    ASSERT_EQ(result.trace.size(), kSiteV1Records) << "epoch_ms=" << epoch_ms;
    EXPECT_EQ(Digest(result.trace), kSiteV1Digest) << "epoch_ms=" << epoch_ms;
  }
}

TEST(EngineTest, PeerFillOnlyMovesCountersNeverBytes) {
  util::SetLogLevel(util::LogLevel::kWarn);
  auto with_peer = GoldenConfig();
  auto without_peer = GoldenConfig();
  without_peer.peer_fill = false;
  const auto a =
      cdn::SimulateSite(synth::SiteProfile::P1(0.01), 7, with_peer, 99);
  const auto b =
      cdn::SimulateSite(synth::SiteProfile::P1(0.01), 7, without_peer, 99);
  EXPECT_EQ(Digest(a.trace), Digest(b.trace));
  EXPECT_EQ(b.peer_fetches, 0u);
  // Peer fills divert origin fetches one for one.
  EXPECT_EQ(a.origin.fetches + a.peer_fetches, b.origin.fetches);
}

TEST(EngineTest, StreamedV2FileMatchesBufferedRun) {
  util::SetLogLevel(util::LogLevel::kWarn);
  const auto profile = synth::SiteProfile::S1(0.01);
  const auto config = GoldenConfig();

  const auto buffered = cdn::SimulateSite(profile, 4, config, 11);

  const std::string path = ::testing::TempDir() + "/atlas_engine_stream.v2";
  cdn::SimulatorResult streamed;
  {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open());
    trace::TraceWriter writer(out);
    trace::WriterSink sink(writer);
    streamed = cdn::SimulateSiteTo(profile, 4, config, 11, sink);
    writer.Finish();
    EXPECT_EQ(writer.written(), buffered.trace.size());
  }
  const auto round_tripped = trace::ReadAnyBinaryFile(path);
  std::remove(path.c_str());

  EXPECT_EQ(Digest(round_tripped), Digest(buffered.trace));
  EXPECT_EQ(streamed.records, buffered.records);
  EXPECT_EQ(streamed.origin.fetches, buffered.origin.fetches);
  EXPECT_EQ(streamed.origin.bytes, buffered.origin.bytes);
  EXPECT_EQ(streamed.peer_fetches, buffered.peer_fetches);
  EXPECT_EQ(streamed.edge_stats.hits, buffered.edge_stats.hits);
  EXPECT_EQ(streamed.edge_stats.misses, buffered.edge_stats.misses);
  EXPECT_EQ(streamed.pushed_objects, buffered.pushed_objects);
  EXPECT_EQ(streamed.pushed_bytes, buffered.pushed_bytes);
}

TEST(EngineTest, ResultMergeFoldsEveryCounter) {
  cdn::SimulatorResult a;
  a.records = 10;
  a.peer_fetches = 2;
  a.peer_bytes = 100;
  a.browser_fresh_hits = 3;
  a.revalidations = 4;
  a.pushed_objects = 5;
  a.pushed_bytes = 500;
  a.origin.fetches = 6;
  a.origin.bytes = 600;
  a.edge_stats.hits = 7;
  a.edge_stats.misses = 8;
  a.per_dc_stats.resize(2);
  a.per_dc_stats[1].hits = 9;

  cdn::SimulatorResult b;
  b.records = 1;
  b.peer_fetches = 1;
  b.peer_bytes = 1;
  b.browser_fresh_hits = 1;
  b.revalidations = 1;
  b.pushed_objects = 1;
  b.pushed_bytes = 1;
  b.origin.fetches = 1;
  b.origin.bytes = 1;
  b.edge_stats.hits = 1;
  b.edge_stats.misses = 1;
  b.per_dc_stats.resize(3);
  b.per_dc_stats[2].misses = 2;

  a.Merge(b);
  EXPECT_EQ(a.records, 11u);
  EXPECT_EQ(a.peer_fetches, 3u);
  EXPECT_EQ(a.peer_bytes, 101u);
  EXPECT_EQ(a.browser_fresh_hits, 4u);
  EXPECT_EQ(a.revalidations, 5u);
  EXPECT_EQ(a.pushed_objects, 6u);
  EXPECT_EQ(a.pushed_bytes, 501u);
  EXPECT_EQ(a.origin.fetches, 7u);
  EXPECT_EQ(a.origin.bytes, 601u);
  EXPECT_EQ(a.edge_stats.hits, 8u);
  EXPECT_EQ(a.edge_stats.misses, 9u);
  ASSERT_EQ(a.per_dc_stats.size(), 3u);
  EXPECT_EQ(a.per_dc_stats[1].hits, 9u);
  EXPECT_EQ(a.per_dc_stats[2].misses, 2u);
}

TEST(EngineTest, ScenarioTotalsEqualFoldedSiteResults) {
  util::SetLogLevel(util::LogLevel::kWarn);
  const cdn::Scenario scenario(synth::SiteProfile::PaperAdultSites(0.01),
                               GoldenConfig(), 42);
  const auto totals = scenario.Totals();
  cdn::SimulatorResult folded;
  std::uint64_t records = 0;
  for (const auto& run : scenario.runs()) {
    folded.Merge(run.result);
    records += run.result.trace.size();
  }
  EXPECT_EQ(totals.records, folded.records);
  EXPECT_EQ(totals.records, records);
  EXPECT_EQ(totals.origin.fetches, folded.origin.fetches);
  EXPECT_EQ(totals.edge_stats.hits, folded.edge_stats.hits);
}

TEST(EngineTest, StreamScenarioMatchesScenario) {
  util::SetLogLevel(util::LogLevel::kWarn);
  const cdn::Scenario scenario(synth::SiteProfile::PaperAdultSites(0.01),
                               GoldenConfig(), 42);
  trace::TraceBuffer via_scenario;
  {
    trace::BufferSink sink(via_scenario);
    scenario.StreamMerged(sink);
  }

  trace::TraceBuffer via_stream;
  trace::BufferSink sink(via_stream);
  const auto result = cdn::StreamScenario(
      synth::SiteProfile::PaperAdultSites(0.01), GoldenConfig(), 42, sink);
  EXPECT_EQ(Digest(via_stream), Digest(via_scenario));
  EXPECT_EQ(result.totals.records, via_stream.size());
  ASSERT_EQ(result.site_results.size(), scenario.runs().size());
  for (std::size_t i = 0; i < result.site_results.size(); ++i) {
    EXPECT_EQ(result.site_results[i].records,
              scenario.run(i).result.records);
  }
}

TEST(EngineTest, RejectsUnsortedEvents) {
  cdn::SimulatorConfig config;
  synth::WorkloadGenerator gen(synth::SiteProfile::P1(0.005), 1);
  auto events = gen.Generate(100);
  ASSERT_GE(events.size(), 2u);
  std::swap(events.front().timestamp_ms, events.back().timestamp_ms);
  cdn::Simulator sim(config, 0);
  trace::CountingSink sink;
  EXPECT_THROW(sim.Run(gen, events, sink), std::invalid_argument);
}

TEST(EngineTest, RejectsNonPositiveEpoch) {
  cdn::SimulatorConfig config;
  config.epoch_ms = 0;
  synth::WorkloadGenerator gen(synth::SiteProfile::P1(0.005), 1);
  const auto events = gen.Generate(100);
  cdn::Simulator sim(config, 0);
  trace::CountingSink sink;
  EXPECT_THROW(sim.Run(gen, events, sink), std::invalid_argument);
}

// --- Bounded memory ----------------------------------------------------------

bool UnderSanitizer() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

TEST(EngineMemoryTest, StreamedSimulationStaysUnderRecordBudget) {
  // The engine must never hold the emitted trace: a run whose output would
  // dwarf the budget as a TraceBuffer has to stream through a v2 writer
  // within it. Tiny video chunks inflate a small event set into many
  // records, so the trace grows while events/catalog/caches stay fixed.
  if (UnderSanitizer()) {
    GTEST_SKIP() << "RSS not meaningful under sanitizer instrumentation";
  }
  util::SetLogLevel(util::LogLevel::kWarn);

  cdn::SimulatorConfig config;
  config.topology.edge_capacity_bytes = 256ULL << 20;
  config.chunk_bytes = 32ULL << 10;  // ~64x the record inflation of 2 MB
  const auto profile = synth::SiteProfile::V1(0.01);
  synth::WorkloadGenerator gen(profile, 99);
  const auto events = gen.Generate(8000);

  if (!util::ResetPeakRss()) {
    GTEST_SKIP() << "peak-RSS reset unsupported on this kernel";
  }
  const std::uint64_t baseline = util::CurrentRssBytes();

  const std::string path = ::testing::TempDir() + "/atlas_engine_big.v2";
  std::uint64_t written = 0;
  {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open());
    trace::TraceWriter writer(out);
    trace::WriterSink sink(writer);
    cdn::Simulator sim(config, 3);
    sim.Run(gen, events, sink, /*threads=*/1);
    writer.Finish();
    written = writer.written();
  }
  const std::uint64_t peak = util::PeakRssBytes();
  std::remove(path.c_str());

  constexpr std::uint64_t kBudgetBytes = 48ULL << 20;
  // The materialized trace alone would blow the budget…
  ASSERT_GT(written * sizeof(trace::LogRecord), 2 * kBudgetBytes)
      << "trace too small to prove anything (records=" << written << ")";
  // …but the streamed run stays inside it.
  ASSERT_GE(peak, baseline);
  EXPECT_LT(peak - baseline, kBudgetBytes)
      << "engine exceeded its memory budget (grew "
      << (peak - baseline) / (1 << 20) << " MB for " << written
      << " records)";
}

}  // namespace
}  // namespace atlas
