#include "cdn/browser_cache.h"

#include <gtest/gtest.h>

namespace atlas::cdn {
namespace {

TEST(BrowserCacheTest, AbsentThenFresh) {
  BrowserCache cache(1000, 100);
  EXPECT_EQ(cache.Lookup(1, 0), BrowserLookup::kAbsent);
  cache.Store(1, 200, 0);
  EXPECT_EQ(cache.Lookup(1, 50), BrowserLookup::kFresh);
}

TEST(BrowserCacheTest, GoesStaleAfterFreshness) {
  BrowserCache cache(1000, 100);
  cache.Store(1, 200, 0);
  EXPECT_EQ(cache.Lookup(1, 100), BrowserLookup::kStale);
  EXPECT_EQ(cache.Lookup(1, 10000), BrowserLookup::kStale);
}

TEST(BrowserCacheTest, RenewRestoresFreshness) {
  BrowserCache cache(1000, 100);
  cache.Store(1, 200, 0);
  EXPECT_EQ(cache.Lookup(1, 150), BrowserLookup::kStale);
  cache.Renew(1, 150);  // the 304 path
  EXPECT_EQ(cache.Lookup(1, 200), BrowserLookup::kFresh);
}

TEST(BrowserCacheTest, RenewUnknownKeyIsNoop) {
  BrowserCache cache(1000, 100);
  cache.Renew(42, 0);
  EXPECT_EQ(cache.Lookup(42, 0), BrowserLookup::kAbsent);
}

TEST(BrowserCacheTest, ClearDropsEverything) {
  BrowserCache cache(1000, 100);
  cache.Store(1, 200, 0);
  cache.Store(2, 200, 0);
  EXPECT_EQ(cache.entry_count(), 2u);
  cache.Clear();  // incognito window closed
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_EQ(cache.Lookup(1, 1), BrowserLookup::kAbsent);
}

TEST(BrowserCacheTest, EvictsLruWhenFull) {
  BrowserCache cache(500, 1000);
  cache.Store(1, 200, 0);
  cache.Store(2, 200, 1);
  EXPECT_EQ(cache.Lookup(1, 2), BrowserLookup::kFresh);  // refresh 1
  cache.Store(3, 200, 3);  // evicts 2 (least recent)
  EXPECT_EQ(cache.Lookup(2, 4), BrowserLookup::kAbsent);
  EXPECT_EQ(cache.Lookup(1, 4), BrowserLookup::kFresh);
  EXPECT_LE(cache.used_bytes(), 500u);
}

TEST(BrowserCacheTest, UncacheablyLargeObjectIgnored) {
  BrowserCache cache(500, 100);
  cache.Store(1, 1000, 0);
  EXPECT_EQ(cache.Lookup(1, 1), BrowserLookup::kAbsent);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(BrowserCacheTest, RestoreUpdatesSizeInPlace) {
  BrowserCache cache(1000, 100);
  cache.Store(1, 200, 0);
  cache.Store(1, 300, 10);
  EXPECT_EQ(cache.used_bytes(), 300u);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.Lookup(1, 50), BrowserLookup::kFresh);
}

TEST(BrowserCacheTest, RejectsBadConstruction) {
  EXPECT_THROW(BrowserCache(0, 100), std::invalid_argument);
  EXPECT_THROW(BrowserCache(100, 0), std::invalid_argument);
}

}  // namespace
}  // namespace atlas::cdn
