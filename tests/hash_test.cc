#include "util/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace atlas::util {
namespace {

TEST(Fnv1a64Test, KnownVectors) {
  // Reference values for FNV-1a 64-bit.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64Test, DifferentInputsDifferentHashes) {
  EXPECT_NE(Fnv1a64("/video/1.mp4"), Fnv1a64("/video/2.mp4"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("acb"));
}

TEST(Mix64Test, BijectiveOnSamples) {
  std::set<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 10000; ++i) out.insert(Mix64(i));
  EXPECT_EQ(out.size(), 10000u);
}

TEST(Mix64Test, AvalancheChangesManyBits) {
  const std::uint64_t a = Mix64(1);
  const std::uint64_t b = Mix64(2);
  EXPECT_GE(__builtin_popcountll(a ^ b), 16);
}

TEST(HashCombineTest, OrderMatters) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2),
            HashCombine(HashCombine(0, 2), 1));
}

TEST(HashCombineTest, Deterministic) {
  EXPECT_EQ(HashCombine(123, 456), HashCombine(123, 456));
}

TEST(HashToBucketTest, InRange) {
  for (std::uint64_t h = 0; h < 1000; ++h) {
    EXPECT_LT(HashToBucket(Mix64(h), 7), 7u);
  }
}

TEST(HashToBucketTest, ZeroBucketsThrows) {
  EXPECT_THROW(HashToBucket(1, 0), std::invalid_argument);
}

TEST(HashToBucketTest, RoughlyUniform) {
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) {
    ++counts[HashToBucket(Mix64(static_cast<std::uint64_t>(i)), 8)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.125, 0.01);
  }
}

}  // namespace
}  // namespace atlas::util
