#include "stats/sampler.h"

#include <gtest/gtest.h>

#include <cmath>

#include <cmath>
#include <map>
#include <numeric>

namespace atlas::stats {
namespace {

TEST(ZipfSamplerTest, RanksInRange) {
  util::Rng rng(1);
  ZipfSampler zipf(100, 0.9);
  for (int i = 0; i < 10000; ++i) {
    const auto k = zipf.Sample(rng);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 100u);
  }
}

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler zipf(50, 1.2);
  double total = 0.0;
  for (std::uint64_t k = 1; k <= 50; ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(zipf.Pmf(0), 0.0);
  EXPECT_DOUBLE_EQ(zipf.Pmf(51), 0.0);
}

// Empirical frequencies must match the analytic PMF — the key guarantee of
// rejection-inversion, checked across exponents including s = 1 (the
// logarithmic special case) and s = 0 (uniform).
class ZipfFidelityTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfFidelityTest, EmpiricalMatchesPmf) {
  const double s = GetParam();
  const std::uint64_t n = 20;
  util::Rng rng(99);
  ZipfSampler zipf(n, s);
  std::map<std::uint64_t, int> counts;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[zipf.Sample(rng)];
  for (std::uint64_t k = 1; k <= n; ++k) {
    const double expected = zipf.Pmf(k);
    const double observed = static_cast<double>(counts[k]) / draws;
    EXPECT_NEAR(observed, expected, 0.01) << "s=" << s << " rank=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfFidelityTest,
                         ::testing::Values(0.0, 0.5, 0.9, 1.0, 1.5, 2.5));

TEST(ZipfSamplerTest, SingletonAlwaysOne) {
  util::Rng rng(1);
  ZipfSampler zipf(1, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 1u);
}

TEST(ZipfSamplerTest, RejectsBadArgs) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.5), std::invalid_argument);
}

TEST(BimodalLogNormalTest, TwoPopulations) {
  util::Rng rng(5);
  BimodalLogNormal bimodal(std::log(1e3), 0.3, std::log(1e6), 0.3, 0.5);
  int small = 0, large = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = bimodal.Sample(rng);
    if (v < 3e4) ++small;
    if (v > 3e4) ++large;
  }
  EXPECT_NEAR(static_cast<double>(small) / 10000, 0.5, 0.03);
  EXPECT_NEAR(static_cast<double>(large) / 10000, 0.5, 0.03);
}

TEST(BimodalLogNormalTest, WeightOneIsUnimodal) {
  util::Rng rng(5);
  BimodalLogNormal m(std::log(100.0), 0.1, std::log(1e9), 0.1, 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(m.Sample(rng), 1000.0);
}

TEST(BimodalLogNormalTest, RejectsBadArgs) {
  EXPECT_THROW(BimodalLogNormal(0, -1, 0, 1, 0.5), std::invalid_argument);
  EXPECT_THROW(BimodalLogNormal(0, 1, 0, 1, 1.5), std::invalid_argument);
}

TEST(AliasTableTest, MatchesWeights) {
  util::Rng rng(7);
  const std::vector<double> w = {1.0, 2.0, 3.0, 4.0};
  AliasTable alias(w);
  std::vector<int> counts(4, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[alias.Sample(rng)];
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / draws, w[i] / 10.0, 0.01);
    EXPECT_NEAR(alias.Probability(i), w[i] / 10.0, 1e-12);
  }
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  util::Rng rng(7);
  AliasTable alias({1.0, 0.0, 1.0});
  for (int i = 0; i < 10000; ++i) EXPECT_NE(alias.Sample(rng), 1u);
}

TEST(AliasTableTest, SingleEntry) {
  util::Rng rng(7);
  AliasTable alias({5.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(alias.Sample(rng), 0u);
}

TEST(AliasTableTest, HighlySkewed) {
  util::Rng rng(7);
  AliasTable alias({1e6, 1.0});
  int rare = 0;
  for (int i = 0; i < 100000; ++i) rare += alias.Sample(rng) == 1 ? 1 : 0;
  EXPECT_LT(rare, 50);
}

TEST(AliasTableTest, RejectsBadInput) {
  EXPECT_THROW(AliasTable({}), std::invalid_argument);
  EXPECT_THROW(AliasTable({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable({1.0, -1.0}), std::invalid_argument);
}

TEST(TruncatedLogNormalTest, StaysInBounds) {
  util::Rng rng(9);
  TruncatedLogNormal t(std::log(1e4), 1.0, 1e3, 1e5);
  for (int i = 0; i < 10000; ++i) {
    const double v = t.Sample(rng);
    EXPECT_GE(v, 1e3);
    EXPECT_LE(v, 1e5);
  }
}

TEST(TruncatedLogNormalTest, ImpossibleRegionThrows) {
  util::Rng rng(9);
  // Median 1, sigma tiny; demand values in [1e8, 1e9]: hopeless.
  TruncatedLogNormal t(0.0, 0.01, 1e8, 1e9);
  EXPECT_THROW(t.Sample(rng), std::runtime_error);
}

TEST(TruncatedLogNormalTest, RejectsInvertedBounds) {
  EXPECT_THROW(TruncatedLogNormal(0, 1, 10, 1), std::invalid_argument);
}

}  // namespace
}  // namespace atlas::stats
