#include "trace/record.h"

#include <gtest/gtest.h>

namespace atlas::trace {
namespace {

TEST(RecordTest, LocalTimestampAppliesOffset) {
  LogRecord r;
  r.timestamp_ms = 1000000;
  r.tz_offset_quarter_hours = 4;  // +1h
  EXPECT_EQ(r.LocalTimestampMs(), 1000000 + 3600 * 1000);
  r.tz_offset_quarter_hours = -2;  // -30min
  EXPECT_EQ(r.LocalTimestampMs(), 1000000 - 30 * 60 * 1000);
}

TEST(RecordTest, EqualityIsFieldwise) {
  LogRecord a, b;
  EXPECT_EQ(a, b);
  b.url_hash = 1;
  EXPECT_NE(a, b);
}

TEST(EnumStringTest, ContentClassRoundTrip) {
  for (int i = 0; i < kNumContentClasses; ++i) {
    const auto c = static_cast<ContentClass>(i);
    EXPECT_EQ(ContentClassFromString(ToString(c)), c);
  }
  EXPECT_THROW(ContentClassFromString("bogus"), std::invalid_argument);
}

TEST(EnumStringTest, DeviceTypeRoundTrip) {
  for (int i = 0; i < kNumDeviceTypes; ++i) {
    const auto d = static_cast<DeviceType>(i);
    EXPECT_EQ(DeviceTypeFromString(ToString(d)), d);
  }
  EXPECT_THROW(DeviceTypeFromString(""), std::invalid_argument);
}

TEST(EnumStringTest, FileTypeRoundTrip) {
  for (int i = 0; i < kNumFileTypes; ++i) {
    const auto t = static_cast<FileType>(i);
    EXPECT_EQ(FileTypeFromString(ToString(t)), t);
  }
  EXPECT_THROW(FileTypeFromString("exe"), std::invalid_argument);
}

TEST(EnumStringTest, CacheStatusRoundTrip) {
  EXPECT_EQ(CacheStatusFromString("HIT"), CacheStatus::kHit);
  EXPECT_EQ(CacheStatusFromString("MISS"), CacheStatus::kMiss);
  EXPECT_THROW(CacheStatusFromString("hit"), std::invalid_argument);
}

}  // namespace
}  // namespace atlas::trace
