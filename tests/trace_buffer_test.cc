#include "trace/trace_buffer.h"

#include <gtest/gtest.h>

#include "trace/content_class.h"

namespace atlas::trace {
namespace {

LogRecord Make(std::int64_t t, std::uint64_t url, std::uint64_t user,
               std::uint32_t pub = 0, FileType ft = FileType::kJpg,
               std::uint64_t bytes = 100) {
  LogRecord r;
  r.timestamp_ms = t;
  r.url_hash = url;
  r.user_id = user;
  r.publisher_id = pub;
  r.file_type = ft;
  r.response_bytes = bytes;
  r.object_size = bytes;
  return r;
}

TEST(TraceBufferTest, SortByTimeIsStable) {
  TraceBuffer buf;
  buf.Add(Make(5, 1, 1));
  buf.Add(Make(1, 2, 1));
  buf.Add(Make(5, 3, 1));
  EXPECT_FALSE(buf.IsSortedByTime());
  buf.SortByTime();
  EXPECT_TRUE(buf.IsSortedByTime());
  EXPECT_EQ(buf[0].url_hash, 2u);
  EXPECT_EQ(buf[1].url_hash, 1u);  // stable: 1 before 3 at equal time
  EXPECT_EQ(buf[2].url_hash, 3u);
}

TEST(TraceBufferTest, StartEndMs) {
  TraceBuffer buf;
  EXPECT_EQ(buf.StartMs(), 0);
  EXPECT_EQ(buf.EndMs(), 0);
  buf.Add(Make(10, 1, 1));
  buf.Add(Make(3, 2, 1));
  EXPECT_EQ(buf.StartMs(), 3);
  EXPECT_EQ(buf.EndMs(), 10);
}

TEST(TraceBufferTest, FilterByPublisher) {
  TraceBuffer buf;
  buf.Add(Make(1, 1, 1, 0));
  buf.Add(Make(2, 2, 1, 1));
  buf.Add(Make(3, 3, 1, 0));
  const auto filtered = buf.FilterByPublisher(0);
  EXPECT_EQ(filtered.size(), 2u);
  for (const auto& r : filtered.records()) EXPECT_EQ(r.publisher_id, 0u);
}

TEST(TraceBufferTest, FilterByClass) {
  TraceBuffer buf;
  buf.Add(Make(1, 1, 1, 0, FileType::kMp4));
  buf.Add(Make(2, 2, 1, 0, FileType::kJpg));
  buf.Add(Make(3, 3, 1, 0, FileType::kCss));
  EXPECT_EQ(buf.FilterByClass(ContentClass::kVideo).size(), 1u);
  EXPECT_EQ(buf.FilterByClass(ContentClass::kImage).size(), 1u);
  EXPECT_EQ(buf.FilterByClass(ContentClass::kOther).size(), 1u);
}

TEST(TraceBufferTest, GroupByObjectPreservesOrder) {
  TraceBuffer buf;
  buf.Add(Make(1, 7, 1));
  buf.Add(Make(2, 8, 2));
  buf.Add(Make(3, 7, 3));
  const auto groups = buf.GroupByObject();
  ASSERT_EQ(groups.size(), 2u);
  const auto& g7 = groups.at(7);
  ASSERT_EQ(g7.size(), 2u);
  EXPECT_EQ(g7[0], 0u);
  EXPECT_EQ(g7[1], 2u);
}

TEST(TraceBufferTest, GroupByUser) {
  TraceBuffer buf;
  buf.Add(Make(1, 1, 100));
  buf.Add(Make(2, 2, 200));
  buf.Add(Make(3, 3, 100));
  const auto groups = buf.GroupByUser();
  EXPECT_EQ(groups.at(100).size(), 2u);
  EXPECT_EQ(groups.at(200).size(), 1u);
}

TEST(TraceBufferTest, UniqueCountsAndBytes) {
  TraceBuffer buf;
  buf.Add(Make(1, 1, 100, 0, FileType::kJpg, 10));
  buf.Add(Make(2, 1, 200, 0, FileType::kJpg, 20));
  buf.Add(Make(3, 2, 100, 0, FileType::kJpg, 30));
  EXPECT_EQ(buf.UniqueObjects(), 2u);
  EXPECT_EQ(buf.UniqueUsers(), 2u);
  EXPECT_EQ(buf.TotalBytes(), 60u);
}

TEST(TraceBufferTest, AppendConcatenates) {
  TraceBuffer a, b;
  a.Add(Make(1, 1, 1));
  b.Add(Make(2, 2, 2));
  a.Append(b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(TraceBufferTest, EmptyBehaviour) {
  TraceBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_TRUE(buf.IsSortedByTime());
  EXPECT_EQ(buf.UniqueUsers(), 0u);
  EXPECT_TRUE(buf.GroupByObject().empty());
}

}  // namespace
}  // namespace atlas::trace
