#include "stats/ecdf.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace atlas::stats {
namespace {

TEST(EcdfTest, EvaluateStepFunction) {
  Ecdf e({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.Evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.Evaluate(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.Evaluate(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.Evaluate(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.Evaluate(100.0), 1.0);
}

TEST(EcdfTest, DuplicatesAccumulate) {
  Ecdf e({2.0, 2.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(e.Evaluate(2.0), 0.75);
  EXPECT_DOUBLE_EQ(e.Evaluate(1.99), 0.0);
}

TEST(EcdfTest, AddThenFinalize) {
  Ecdf e;
  e.Add(3.0);
  e.Add(1.0);
  e.Finalize();
  EXPECT_DOUBLE_EQ(e.Evaluate(1.0), 0.5);
  EXPECT_DOUBLE_EQ(e.Min(), 1.0);
  EXPECT_DOUBLE_EQ(e.Max(), 3.0);
}

TEST(EcdfTest, UnfinalizedThrows) {
  Ecdf e;
  e.Add(1.0);
  EXPECT_THROW(e.Evaluate(1.0), std::logic_error);
}

TEST(EcdfTest, EmptyThrows) {
  Ecdf e;
  e.Finalize();
  EXPECT_THROW(e.Evaluate(1.0), std::logic_error);
  EXPECT_THROW(e.Quantile(0.5), std::logic_error);
}

TEST(EcdfTest, QuantilesInterpolate) {
  Ecdf e({0.0, 10.0});
  EXPECT_DOUBLE_EQ(e.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(e.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(e.Quantile(1.0), 10.0);
}

TEST(EcdfTest, MedianOfOddCount) {
  Ecdf e({1.0, 2.0, 9.0});
  EXPECT_DOUBLE_EQ(e.Median(), 2.0);
}

TEST(EcdfTest, QuantileRangeChecked) {
  Ecdf e({1.0});
  EXPECT_THROW(e.Quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(e.Quantile(1.1), std::invalid_argument);
}

TEST(EcdfTest, MeanMatches) {
  Ecdf e({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(e.Mean(), 2.0);
}

TEST(EcdfTest, LogGridMonotone) {
  util::Rng rng(7);
  Ecdf e;
  for (int i = 0; i < 1000; ++i) e.Add(rng.NextLogNormal(10, 1.5));
  e.Finalize();
  const auto grid = e.LogGrid(30);
  ASSERT_EQ(grid.size(), 30u);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GT(grid[i].first, grid[i - 1].first);
    EXPECT_GE(grid[i].second, grid[i - 1].second);
  }
  EXPECT_NEAR(grid.back().second, 1.0, 1e-12);
}

TEST(EcdfTest, LinearGridEndpoints) {
  Ecdf e({1.0, 2.0, 3.0});
  const auto grid = e.LinearGrid(5);
  EXPECT_DOUBLE_EQ(grid.front().first, 1.0);
  EXPECT_DOUBLE_EQ(grid.back().first, 3.0);
  EXPECT_DOUBLE_EQ(grid.back().second, 1.0);
}

TEST(EcdfTest, KsDistanceIdentical) {
  Ecdf a({1.0, 2.0, 3.0}), b({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(Ecdf::KsDistance(a, b), 0.0);
}

TEST(EcdfTest, KsDistanceDisjoint) {
  Ecdf a({1.0, 2.0}), b({10.0, 20.0});
  EXPECT_DOUBLE_EQ(Ecdf::KsDistance(a, b), 1.0);
}

TEST(EcdfTest, KsDistanceSymmetric) {
  util::Rng rng(11);
  Ecdf a, b;
  for (int i = 0; i < 500; ++i) {
    a.Add(rng.NextGaussian());
    b.Add(rng.NextGaussian(0.5, 1.0));
  }
  a.Finalize();
  b.Finalize();
  EXPECT_DOUBLE_EQ(Ecdf::KsDistance(a, b), Ecdf::KsDistance(b, a));
  EXPECT_GT(Ecdf::KsDistance(a, b), 0.05);
}

}  // namespace
}  // namespace atlas::stats
