// Shared scenario helpers for tests.
#pragma once

#include "cdn/scenario.h"
#include "trace/sink.h"
#include "trace/trace_buffer.h"

namespace atlas::testutil {

// Materializes a scenario's merged trace through the streaming k-way merge
// (MergedTraceSource via StreamMerged). Tests that genuinely need the whole
// trace in memory go through here; production code streams instead.
inline trace::TraceBuffer MaterializeMerged(const cdn::Scenario& scenario) {
  trace::TraceBuffer out;
  trace::BufferSink sink(out);
  scenario.StreamMerged(sink);
  return out;
}

}  // namespace atlas::testutil
