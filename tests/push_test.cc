#include "cdn/push.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace atlas::cdn {
namespace {

synth::Catalog MakeCatalog(double scale = 0.05, std::uint64_t seed = 3) {
  util::Rng rng(seed);
  return synth::Catalog(synth::SiteProfile::V2(scale), rng);
}

TEST(BuildPushPlanTest, DisabledIsEmpty) {
  const auto catalog = MakeCatalog();
  PushConfig config;
  config.enabled = false;
  EXPECT_TRUE(BuildPushPlan(catalog, config).empty());
}

TEST(BuildPushPlanTest, RespectsTopN) {
  const auto catalog = MakeCatalog();
  PushConfig config;
  config.enabled = true;
  config.top_n = 25;
  const auto plan = BuildPushPlan(catalog, config);
  EXPECT_LE(plan.size(), 25u);
  EXPECT_GT(plan.size(), 0u);
}

TEST(BuildPushPlanTest, OnlySelectedPatterns) {
  const auto catalog = MakeCatalog();
  PushConfig config;
  config.enabled = true;
  config.top_n = 1000000;
  config.include_diurnal = true;
  config.include_long_lived = false;
  config.include_short_lived = false;
  config.include_flash = false;
  config.include_outlier = false;
  const auto plan = BuildPushPlan(catalog, config);
  ASSERT_FALSE(plan.empty());
  for (const auto& item : plan) {
    EXPECT_EQ(catalog.object(item.object_index).pattern.type,
              synth::PatternType::kDiurnal);
  }
}

TEST(BuildPushPlanTest, SortedBySchedule) {
  const auto catalog = MakeCatalog();
  PushConfig config;
  config.enabled = true;
  config.top_n = 200;
  const auto plan = BuildPushPlan(catalog, config);
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan[i - 1].push_at_ms, plan[i].push_at_ms);
  }
  for (const auto& item : plan) {
    EXPECT_GE(item.push_at_ms, 0);  // pre-existing objects clamp to t=0
  }
}

TEST(BuildPushPlanTest, PicksMostPopularEligible) {
  const auto catalog = MakeCatalog();
  PushConfig config;
  config.enabled = true;
  config.top_n = 10;
  const auto plan = BuildPushPlan(catalog, config);
  ASSERT_EQ(plan.size(), 10u);
  // Every planned object must have weight >= every unplanned eligible one.
  double min_planned = 1e300;
  std::set<std::uint32_t> planned;
  for (const auto& item : plan) {
    planned.insert(item.object_index);
    min_planned = std::min(min_planned,
                           catalog.object(item.object_index).popularity_weight);
  }
  for (std::uint32_t i = 0; i < catalog.size(); ++i) {
    const auto& obj = catalog.object(i);
    const bool eligible =
        obj.pattern.type == synth::PatternType::kDiurnal ||
        obj.pattern.type == synth::PatternType::kLongLived;
    if (eligible && planned.count(i) == 0) {
      EXPECT_LE(obj.popularity_weight, min_planned + 1e-12);
    }
  }
}

}  // namespace
}  // namespace atlas::cdn
