#include "trace/stream.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/suite.h"
#include "cdn/scenario.h"
#include "scenario_fixtures.h"
#include "trace/trace_io.h"
#include "trace/useragent.h"
#include "util/hash.h"
#include "util/mem.h"
#include "util/rng.h"

namespace atlas::trace {
namespace {

TraceBuffer MakeSampleTrace(std::size_t n, std::uint64_t seed = 17) {
  util::Rng rng(seed);
  TraceBuffer buf;
  std::int64_t ts = 0;
  for (std::size_t i = 0; i < n; ++i) {
    LogRecord r;
    ts += static_cast<std::int64_t>(rng.NextBounded(500));
    r.timestamp_ms = ts;  // non-decreasing, like every ATLAS producer
    r.url_hash = rng.Next();
    r.user_id = rng.Next();
    r.object_size = rng.NextBounded(1 << 30);
    r.response_bytes = rng.NextBounded(r.object_size + 1);
    r.publisher_id = static_cast<std::uint32_t>(rng.NextBounded(6));
    r.user_agent_id = static_cast<std::uint16_t>(rng.NextBounded(20));
    r.response_code = rng.NextBool(0.9) ? 200 : 304;
    r.file_type = static_cast<FileType>(rng.NextBounded(kNumFileTypes));
    r.cache_status =
        rng.NextBool(0.8) ? CacheStatus::kHit : CacheStatus::kMiss;
    r.tz_offset_quarter_hours =
        static_cast<std::int8_t>(rng.NextInt(-32, 36));
    buf.Add(r);
  }
  return buf;
}

std::string SerializeV2(const TraceBuffer& buf,
                        std::size_t block_records = kDefaultBlockRecords) {
  std::stringstream out;
  WriteV2(buf, out, block_records);
  return out.str();
}

TraceBuffer Drain(const std::string& data,
                  std::size_t chunk_records = kDefaultBlockRecords) {
  std::stringstream in(data);
  TraceReader reader(in, chunk_records);
  return ReadAllRecords(reader);
}

// As Drain, but through the SoA block path (TraceReader::NextBlock): the
// batch pipeline must reject corrupt input exactly as loudly as the
// per-record one — never a short silent read.
TraceBuffer DrainBlocks(const std::string& data,
                        std::size_t chunk_records = kDefaultBlockRecords) {
  std::stringstream in(data);
  TraceReader reader(in, chunk_records);
  TraceBuffer out;
  BlockBufferSink sink(out);
  for (const auto* block = reader.NextBlock(); block != nullptr;
       block = reader.NextBlock()) {
    sink.WriteBlock(*block);
  }
  return out;
}

// v2 layout offsets (see stream.h): 4 magic + 4 version + 8 count.
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kCountOffset = 8;
// Per block: 4 nrec + 4 payload_bytes + 4 crc, then the payload.
constexpr std::size_t kBlockHeaderBytes = 12;

void PatchU32(std::string& data, std::size_t offset, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    data[offset + static_cast<std::size_t>(i)] =
        static_cast<char>((value >> (8 * i)) & 0xFF);
  }
}

void PatchU64(std::string& data, std::size_t offset, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    data[offset + static_cast<std::size_t>(i)] =
        static_cast<char>((value >> (8 * i)) & 0xFF);
  }
}

// --- CRC32 --------------------------------------------------------------------

TEST(Crc32Test, MatchesIeeeCheckValue) {
  // The standard CRC-32 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(util::Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const char* data = "streaming trace pipeline";
  const auto whole = util::Crc32(data, 24);
  const auto first = util::Crc32(data, 10);
  EXPECT_EQ(util::Crc32(data + 10, 14, first), whole);
  EXPECT_NE(util::Crc32(data, 23), whole);
}

// --- v2 round trips -----------------------------------------------------------

TEST(StreamRoundTripTest, PreservesEveryField) {
  const TraceBuffer original = MakeSampleTrace(500);
  const TraceBuffer loaded = Drain(SerializeV2(original));
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i], original[i]) << "record " << i;
  }
}

TEST(StreamRoundTripTest, EmptyTrace) {
  const std::string data = SerializeV2(TraceBuffer{});
  EXPECT_EQ(Drain(data).size(), 0u);
}

TEST(StreamRoundTripTest, BlockBoundaries) {
  // One short block, an exact multiple, and a ragged tail.
  for (const std::size_t n : {1UL, 8UL, 24UL, 25UL, 31UL}) {
    const TraceBuffer original = MakeSampleTrace(n, n);
    const TraceBuffer loaded =
        Drain(SerializeV2(original, /*block_records=*/8), 8);
    ASSERT_EQ(loaded.size(), n);
    EXPECT_EQ(loaded[n - 1], original[n - 1]);
  }
}

TEST(StreamRoundTripTest, WriterCountsRecords) {
  std::stringstream out;
  TraceWriter writer(out, /*block_records=*/4);
  const TraceBuffer buf = MakeSampleTrace(10);
  for (const auto& r : buf.records()) writer.Add(r);
  writer.Finish();
  writer.Finish();  // idempotent
  EXPECT_EQ(writer.written(), 10u);
  std::stringstream in(out.str());
  TraceReader reader(in);
  EXPECT_EQ(reader.version(), kBlockFormatVersion);
  ASSERT_TRUE(reader.declared_count().has_value());
  EXPECT_EQ(*reader.declared_count(), 10u);
}

TEST(StreamRoundTripTest, UnknownCountSentinelReadsViaTrailer) {
  // A writer on a non-seekable sink leaves the header at the sentinel; the
  // reader then only learns (and verifies) the count from the trailer.
  const TraceBuffer original = MakeSampleTrace(50);
  std::string data = SerializeV2(original);
  PatchU64(data, kCountOffset, kUnknownCount);
  std::stringstream in(data);
  TraceReader reader(in);
  EXPECT_FALSE(reader.declared_count().has_value());
  TraceBuffer loaded = ReadAllRecords(reader);
  ASSERT_EQ(loaded.size(), 50u);
  EXPECT_EQ(loaded[49], original[49]);
}

TEST(StreamRoundTripTest, TraceReaderReadsV1Streams) {
  const TraceBuffer original = MakeSampleTrace(100);
  std::stringstream v1;
  WriteBinary(original, v1);
  std::stringstream in(v1.str());
  TraceReader reader(in, /*chunk_records=*/16);
  EXPECT_EQ(reader.version(), 1u);
  ASSERT_TRUE(reader.declared_count().has_value());
  EXPECT_EQ(*reader.declared_count(), 100u);
  const TraceBuffer loaded = ReadAllRecords(reader);
  ASSERT_EQ(loaded.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(loaded[i], original[i]) << "record " << i;
  }
}

TEST(StreamRoundTripTest, ReadAnyBinaryFileHandlesBothFormats) {
  const TraceBuffer original = MakeSampleTrace(64);
  const std::string v1_path = ::testing::TempDir() + "/atlas_stream_v1.bin";
  const std::string v2_path = ::testing::TempDir() + "/atlas_stream_v2.bin";
  WriteBinaryFile(original, v1_path);
  WriteV2File(original, v2_path, /*block_records=*/16);
  const TraceBuffer from_v1 = ReadAnyBinaryFile(v1_path);
  const TraceBuffer from_v2 = ReadAnyBinaryFile(v2_path);
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
  ASSERT_EQ(from_v1.size(), original.size());
  ASSERT_EQ(from_v2.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(from_v1[i], original[i]);
    EXPECT_EQ(from_v2[i], original[i]);
  }
}

// --- Corruption corpus --------------------------------------------------------
// Every mutation must surface as std::runtime_error — never a short read,
// never garbage records, never an allocation driven by attacker-controlled
// lengths.

TEST(StreamCorruptionTest, BadMagicRejected) {
  std::string data = SerializeV2(MakeSampleTrace(10));
  data[0] = 'X';
  EXPECT_THROW(Drain(data), std::runtime_error);
}

TEST(StreamCorruptionTest, UnsupportedVersionRejected) {
  std::string data = SerializeV2(MakeSampleTrace(10));
  PatchU32(data, 4, 99);
  EXPECT_THROW(Drain(data), std::runtime_error);
}

TEST(StreamCorruptionTest, PayloadBitFlipFailsCrc) {
  std::string data = SerializeV2(MakeSampleTrace(10));
  data[kHeaderBytes + kBlockHeaderBytes + 5] ^= 0x01;
  EXPECT_THROW(Drain(data), std::runtime_error);
}

TEST(StreamCorruptionTest, TruncationMidPayloadRejected) {
  std::string data = SerializeV2(MakeSampleTrace(100));
  data.resize(kHeaderBytes + kBlockHeaderBytes + 17);
  EXPECT_THROW(Drain(data), std::runtime_error);
}

TEST(StreamCorruptionTest, TruncationMidBlockHeaderRejected) {
  std::string data = SerializeV2(MakeSampleTrace(100));
  data.resize(kHeaderBytes + 2);
  EXPECT_THROW(Drain(data), std::runtime_error);
}

TEST(StreamCorruptionTest, MissingTerminatorRejected) {
  // Chop the terminator + trailer: an abandoned writer must not read as a
  // complete (shorter) stream.
  std::string data = SerializeV2(MakeSampleTrace(10));
  data.resize(data.size() - (kBlockHeaderBytes + 8));
  EXPECT_THROW(Drain(data), std::runtime_error);
}

TEST(StreamCorruptionTest, OversizedBlockCountRejected) {
  // nrec beyond kMaxBlockRecords must be rejected before any allocation
  // sized from it.
  std::string data = SerializeV2(MakeSampleTrace(10));
  PatchU32(data, kHeaderBytes,
           static_cast<std::uint32_t>(kMaxBlockRecords + 1));
  EXPECT_THROW(Drain(data), std::runtime_error);
}

TEST(StreamCorruptionTest, InconsistentPayloadLengthRejected) {
  std::string data = SerializeV2(MakeSampleTrace(10));
  PatchU32(data, kHeaderBytes + 4, 123);  // != nrec * record size
  EXPECT_THROW(Drain(data), std::runtime_error);
}

TEST(StreamCorruptionTest, HeaderCountMismatchRejected) {
  std::string data = SerializeV2(MakeSampleTrace(10));
  PatchU64(data, kCountOffset, 11);
  EXPECT_THROW(Drain(data), std::runtime_error);
}

TEST(StreamCorruptionTest, TrailerMismatchRejected) {
  std::string data = SerializeV2(MakeSampleTrace(10));
  PatchU64(data, data.size() - 8, 9);
  EXPECT_THROW(Drain(data), std::runtime_error);
}

// The same corpus through the SoA decode path. `NextBlock` decodes a whole
// CRC block into columns at once, so its failure behavior is proven
// separately from the per-record cursor.

TEST(StreamCorruptionTest, BatchTruncationMidBlockRejected) {
  std::string data = SerializeV2(MakeSampleTrace(100));
  data.resize(kHeaderBytes + kBlockHeaderBytes + 17);
  EXPECT_THROW(DrainBlocks(data), std::runtime_error);
}

TEST(StreamCorruptionTest, BatchBlockCountPayloadDisagreementRejected) {
  // nrec says 9 records but the payload holds 10: the SoA decode must
  // refuse the block, not decode nine records and drop one.
  std::string data = SerializeV2(MakeSampleTrace(10));
  PatchU32(data, kHeaderBytes, 9);
  EXPECT_THROW(DrainBlocks(data), std::runtime_error);
}

TEST(StreamCorruptionTest, BatchZeroRecordTrailingBlockRejected) {
  // A forged zero-record block before the terminator (nrec=0, no payload,
  // nonzero crc) is not a valid terminator and not a valid block; the
  // batch reader must fail, never yield an empty block or stop early.
  std::string data = SerializeV2(MakeSampleTrace(10));
  std::string forged(kBlockHeaderBytes, '\0');
  PatchU32(forged, 8, 0xDEADBEEFu);
  data.insert(data.size() - (kBlockHeaderBytes + 8), forged);
  EXPECT_THROW(DrainBlocks(data), std::runtime_error);
}

TEST(StreamCorruptionTest, BatchPayloadBitFlipFailsCrc) {
  std::string data = SerializeV2(MakeSampleTrace(10));
  data[kHeaderBytes + kBlockHeaderBytes + 5] ^= 0x01;
  EXPECT_THROW(DrainBlocks(data), std::runtime_error);
}

// --- Block adapters round-trip ------------------------------------------------

TEST(BlockAdapterTest, BlockAndRecordViewsAgree) {
  const TraceBuffer original = MakeSampleTrace(300);
  // Buffer -> blocks -> per-record adapter: same records in order.
  BufferBlockSource blocks(original, /*block_records=*/64);
  PerRecordSource records(blocks);
  std::size_t i = 0;
  for (const auto* r = records.NextRecord(); r != nullptr;
       r = records.NextRecord()) {
    ASSERT_LT(i, original.size());
    EXPECT_EQ(*r, original[i]) << "record " << i;
    ++i;
  }
  EXPECT_EQ(i, original.size());
}

TEST(BlockAdapterTest, ChunkSourceRepacksIntoBlocks) {
  const TraceBuffer original = MakeSampleTrace(100);
  // Record stream -> SoA blocks (ragged final block) -> buffer.
  BufferSource records(original);
  ChunkBlockSource blocks(records, /*block_records=*/7);
  TraceBuffer out;
  BlockBufferSink sink(out);
  std::size_t block_count = 0;
  for (const auto* b = blocks.NextBlock(); b != nullptr;
       b = blocks.NextBlock()) {
    EXPECT_LE(b->size(), 7u);
    sink.WriteBlock(*b);
    ++block_count;
  }
  EXPECT_EQ(block_count, (100 + 6) / 7);
  ASSERT_EQ(out.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(out[i], original[i]) << "record " << i;
  }
}

// --- Streaming suite equivalence ---------------------------------------------

std::string RenderedReport(analysis::AnalysisSuite& suite) {
  std::ostringstream out;
  suite.Render(out);
  return out.str();
}

TEST(StreamingSuiteTest, ReportByteIdenticalToInMemoryAtAnyThreadCount) {
  // The acceptance bar for the whole streaming refactor: disk-streamed and
  // in-memory analysis must render byte-identical reports, at 1 thread and
  // at 8.
  cdn::SimulatorConfig config;
  config.topology.edge_capacity_bytes = 256ULL << 20;
  const auto scenario = cdn::Scenario::PaperStudy(0.01, config, 42);
  const auto merged = testutil::MaterializeMerged(scenario);

  const std::string path = ::testing::TempDir() + "/atlas_suite_stream.v2";
  WriteV2File(merged, path);

  analysis::SuiteConfig suite_config;
  suite_config.trend.min_requests = 60;
  suite_config.trend.max_objects = 40;

  std::string golden;
  for (const int threads : {1, 8}) {
    suite_config.threads = threads;
    analysis::AnalysisSuite in_memory(merged, scenario.registry(),
                                      suite_config);
    TraceFileReader source(path);
    // Per-record path, explicitly: the in-memory suite runs the block path,
    // so this comparison also pins batch == per-record.
    analysis::AnalysisSuite streamed(static_cast<RecordSource&>(source),
                                     scenario.registry(), suite_config);
    const std::string mem_report = RenderedReport(in_memory);
    const std::string stream_report = RenderedReport(streamed);
    EXPECT_EQ(mem_report, stream_report) << "threads=" << threads;
    if (golden.empty()) golden = mem_report;
    EXPECT_EQ(mem_report, golden) << "threads=" << threads;
  }
  std::remove(path.c_str());
}

// --- Bounded memory -----------------------------------------------------------

bool UnderSanitizer() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

// ~73 MB on disk, more in RAM — a trace whose in-memory TraceBuffer would
// exceed the streaming budget by itself. Accumulator state scales with
// distinct users/objects, so the trace cycles a small population through
// many records.
constexpr std::uint64_t kBigTraceRecords = 1'500'000;
constexpr std::uint64_t kStreamBudgetBytes = 48ULL << 20;

void WriteBigSyntheticTrace(const std::string& path, std::uint32_t pub) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.is_open());
  TraceWriter writer(out);
  util::Rng rng(5);
  const std::uint16_t num_uas = UaBank::Instance().size();
  LogRecord r;
  r.publisher_id = pub;
  r.response_code = 200;
  r.cache_status = CacheStatus::kHit;
  for (std::uint64_t i = 0; i < kBigTraceRecords; ++i) {
    r.timestamp_ms = static_cast<std::int64_t>(i / 4);
    r.url_hash = i % 10000;
    r.user_id = static_cast<std::uint32_t>(i % 1000);
    r.user_agent_id = static_cast<std::uint16_t>(i % num_uas);
    r.object_size = 1000 + rng.NextBounded(100000);
    r.response_bytes = r.object_size;
    r.file_type = static_cast<FileType>(i % kNumFileTypes);
    writer.Add(r);
  }
  writer.Finish();
}

// Streams `path` through the full AnalysisSuite on `source_kind` ("record"
// or "block") and asserts peak RSS growth stays under the budget.
void ExpectSuiteStreamsUnderBudget(const std::string& source_kind) {
  if (UnderSanitizer()) {
    GTEST_SKIP() << "RSS not meaningful under sanitizer instrumentation";
  }
  PublisherRegistry registry;
  const std::uint32_t pub = registry.Register("T-1", SiteKind::kAdultVideo);

  const std::string path =
      ::testing::TempDir() + "/atlas_big_stream_" + source_kind + ".v2";
  WriteBigSyntheticTrace(path, pub);

  if (!util::ResetPeakRss()) {
    std::remove(path.c_str());
    GTEST_SKIP() << "peak-RSS reset unsupported on this kernel";
  }
  const std::uint64_t baseline = util::CurrentRssBytes();
  {
    analysis::SuiteConfig suite_config;
    suite_config.run_trend_clusters = false;
    suite_config.threads = 1;
    TraceFileReader source(path);
    auto suite = source_kind == "block"
                     ? analysis::AnalysisSuite(static_cast<BlockSource&>(source),
                                               registry, suite_config)
                     : analysis::AnalysisSuite(
                           static_cast<RecordSource&>(source), registry,
                           suite_config);
    ASSERT_EQ(suite.sites().size(), 1u);
    EXPECT_EQ(suite.sites()[0].summary.records, kBigTraceRecords);
  }
  const std::uint64_t peak = util::PeakRssBytes();
  std::remove(path.c_str());

  ASSERT_GE(peak, baseline);
  EXPECT_LT(peak - baseline, kStreamBudgetBytes)
      << "streaming suite (" << source_kind
      << " path) exceeded its memory budget (grew "
      << (peak - baseline) / (1 << 20) << " MB)";
}

TEST(StreamMemoryTest, SuiteStreamsLargeTraceUnderBlockBudget) {
  ExpectSuiteStreamsUnderBudget("record");
}

TEST(StreamMemoryTest, BatchSuiteStreamsLargeTraceUnderBlockBudget) {
  // The SoA path holds one decoded RecordBlock at a time; it must not
  // re-buffer the trace (e.g. by accumulating blocks in the demultiplexer).
  ExpectSuiteStreamsUnderBudget("block");
}

// A sink that accepts `capacity` bytes, then fails every write — the
// full-disk failure mode. The v2 writer must surface this from Finish()
// (or an earlier block flush), never report success over a torn stream.
class FullDiskBuf : public std::streambuf {
 public:
  explicit FullDiskBuf(std::size_t capacity) : capacity_(capacity) {}

 protected:
  int overflow(int ch) override {
    if (written_ >= capacity_) return traits_type::eof();
    ++written_;
    return ch;
  }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    if (written_ + static_cast<std::size_t>(n) > capacity_) {
      const auto fit = capacity_ - written_;
      written_ = capacity_;
      return static_cast<std::streamsize>(fit);
    }
    written_ += static_cast<std::size_t>(n);
    return n;
  }

 private:
  std::size_t capacity_;
  std::size_t written_ = 0;
};

TEST(TraceWriterTest, ShortWriteSurfacesFromFinish) {
  const TraceBuffer trace = MakeSampleTrace(4096);
  FullDiskBuf buf(1024);  // header fits; the first block flush does not
  std::ostream out(&buf);
  TraceWriter writer(out);
  writer.Append(trace.records());
  EXPECT_THROW(writer.Finish(), std::runtime_error);
}

}  // namespace
}  // namespace atlas::trace
