#include "stats/correlation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace atlas::stats {
namespace {

TEST(PearsonTest, PerfectPositive) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegative) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {3, 2, 1}), -1.0, 1e-12);
}

TEST(PearsonTest, ZeroVarianceGivesZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(PearsonTest, MismatchedLengthsThrow) {
  EXPECT_THROW(PearsonCorrelation({1, 2}, {1}), std::invalid_argument);
}

TEST(PearsonTest, TooShortGivesZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1}, {2}), 0.0);
}

TEST(PearsonTest, IndependentNearZero) {
  util::Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.NextGaussian());
    y.push_back(rng.NextGaussian());
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.0, 0.03);
}

TEST(MidRanksTest, NoTies) {
  const auto r = MidRanks({30, 10, 20});
  EXPECT_EQ(r, (std::vector<double>{3, 1, 2}));
}

TEST(MidRanksTest, TiesAveraged) {
  const auto r = MidRanks({10, 20, 20, 30});
  EXPECT_EQ(r, (std::vector<double>{1, 2.5, 2.5, 4}));
}

TEST(SpearmanTest, MonotoneNonlinearIsOne) {
  std::vector<double> x, y;
  for (int i = 1; i <= 50; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.3 * i));  // monotone but very nonlinear
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  // Pearson is below 1 for nonlinear monotone data.
  EXPECT_LT(PearsonCorrelation(x, y), 0.9);
}

TEST(SpearmanTest, ReversedIsMinusOne) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {10, 8, 6, 4, 2};
  EXPECT_NEAR(SpearmanCorrelation(x, y), -1.0, 1e-12);
}

TEST(SpearmanTest, WithTies) {
  // Ranks handle ties without blowing up.
  std::vector<double> x = {1, 1, 2, 3};
  std::vector<double> y = {1, 2, 2, 4};
  const double rho = SpearmanCorrelation(x, y);
  EXPECT_GT(rho, 0.5);
  EXPECT_LE(rho, 1.0);
}

}  // namespace
}  // namespace atlas::stats
