#include "synth/site_profile.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/rng.h"

namespace atlas::synth {
namespace {

TEST(SizeModelTest, LogNormalMedianRoughlyRight) {
  util::Rng rng(1);
  const auto model = SizeModel::LogNormal(1e6, 0.5, 1e3, 1e9);
  std::vector<double> v;
  for (int i = 0; i < 20001; ++i) {
    v.push_back(static_cast<double>(model.Sample(rng)));
  }
  std::nth_element(v.begin(), v.begin() + 10000, v.end());
  EXPECT_NEAR(v[10000] / 1e6, 1.0, 0.05);
}

TEST(SizeModelTest, ClampsToBounds) {
  util::Rng rng(2);
  const auto model = SizeModel::LogNormal(1e6, 3.0, 1e4, 1e7);
  for (int i = 0; i < 5000; ++i) {
    const auto s = model.Sample(rng);
    EXPECT_GE(s, 10000u);
    EXPECT_LE(s, 10000000u);
  }
}

TEST(SizeModelTest, BimodalHitsBothModes) {
  util::Rng rng(3);
  const auto model =
      SizeModel::Bimodal(1e4, 0.3, 1e6, 0.3, 0.5, 1e2, 1e8);
  int small = 0, large = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto s = model.Sample(rng);
    if (s < 1e5) ++small;
    else ++large;
  }
  EXPECT_NEAR(small / 10000.0, 0.5, 0.05);
  EXPECT_NEAR(large / 10000.0, 0.5, 0.05);
}

TEST(PatternMixTest, ValidateRejectsBadMixes) {
  PatternMix mix;
  mix.fractions = {0.5, 0.5, 0.0, 0.0, 0.0};
  EXPECT_NO_THROW(mix.Validate());
  mix.fractions = {0.5, 0.4, 0.0, 0.0, 0.0};
  EXPECT_THROW(mix.Validate(), std::invalid_argument);
  mix.fractions = {1.5, -0.5, 0.0, 0.0, 0.0};
  EXPECT_THROW(mix.Validate(), std::invalid_argument);
}

TEST(PatternMixTest, SampleRespectsMix) {
  util::Rng rng(5);
  PatternMix mix;
  mix.fractions = {0.7, 0.0, 0.3, 0.0, 0.0};
  int diurnal = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto p = mix.Sample(rng);
    EXPECT_TRUE(p == PatternType::kDiurnal || p == PatternType::kShortLived);
    diurnal += p == PatternType::kDiurnal ? 1 : 0;
  }
  EXPECT_NEAR(diurnal / 10000.0, 0.7, 0.03);
}

class PaperProfileTest
    : public ::testing::TestWithParam<SiteProfile (*)(double)> {};

TEST_P(PaperProfileTest, ValidatesAtAnyScale) {
  for (double scale : {1.0, 0.1, 0.01, 0.001}) {
    const SiteProfile p = GetParam()(scale);
    EXPECT_NO_THROW(p.Validate()) << p.name << " scale " << scale;
    EXPECT_GE(p.num_objects, 50u);
    EXPECT_GE(p.num_users, 20u);
    EXPECT_GE(p.total_requests, 500u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSites, PaperProfileTest,
                         ::testing::Values(&SiteProfile::V1, &SiteProfile::V2,
                                           &SiteProfile::P1, &SiteProfile::P2,
                                           &SiteProfile::S1,
                                           &SiteProfile::NonAdult));

TEST(SiteProfileTest, PaperCatalogSizes) {
  // Fig. 1's catalog sizes at scale 1.
  EXPECT_EQ(SiteProfile::V1().num_objects, 6600u);
  EXPECT_EQ(SiteProfile::V2().num_objects, 55600u);
  EXPECT_EQ(SiteProfile::P1().num_objects, 16300u);
  EXPECT_EQ(SiteProfile::P2().num_objects, 29600u);
  EXPECT_EQ(SiteProfile::S1().num_objects, 22900u);
}

TEST(SiteProfileTest, V1IsVideoHeavy) {
  const auto p = SiteProfile::V1();
  EXPECT_NEAR(p.object_class_mix[0], 0.98, 1e-9);
  EXPECT_EQ(p.kind, trace::SiteKind::kAdultVideo);
}

TEST(SiteProfileTest, S1IsMobileHeavy) {
  // Fig. 4: >1/3 of S-1 users are non-desktop.
  const auto p = SiteProfile::S1();
  EXPECT_GT(1.0 - p.device_mix[0], 1.0 / 3.0);
}

TEST(SiteProfileTest, V2IsDesktopDominated) {
  EXPECT_GT(SiteProfile::V2().device_mix[0], 0.95);
}

TEST(SiteProfileTest, V1PeaksLateNight) {
  // Fig. 3: V-1 peaks in late-night/early-morning hours.
  const auto p = SiteProfile::V1();
  EXPECT_GE(p.peak_local_hour, 0.0);
  EXPECT_LE(p.peak_local_hour, 6.0);
  // The non-adult control peaks in the classic evening band.
  const auto n = SiteProfile::NonAdult();
  EXPECT_GE(n.peak_local_hour, 19.0);
  EXPECT_LE(n.peak_local_hour, 23.0);
}

TEST(SiteProfileTest, VideoSitesMoreAddictive) {
  EXPECT_GT(SiteProfile::V1().repeat_request_prob,
            SiteProfile::P1().repeat_request_prob);
  EXPECT_GT(SiteProfile::V2().repeat_request_prob,
            SiteProfile::P2().repeat_request_prob);
}

TEST(SiteProfileTest, ScaleOutOfRangeThrows) {
  EXPECT_THROW(SiteProfile::V1(0.0), std::invalid_argument);
  EXPECT_THROW(SiteProfile::V1(-1.0), std::invalid_argument);
  EXPECT_THROW(SiteProfile::V1(kMaxProfileScale * 2), std::invalid_argument);
  EXPECT_THROW(SiteProfile::V1(std::nan("")), std::invalid_argument);
  EXPECT_THROW(SiteProfile::V1(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(SiteProfileTest, ScaleAboveOneExtrapolates) {
  // Scale > 1 is the paper-scale regime: populations keep growing linearly
  // instead of truncating or silently overflowing.
  const auto base = SiteProfile::V1(1.0);
  const auto big = SiteProfile::V1(5.0);
  EXPECT_NO_THROW(big.Validate());
  EXPECT_NEAR(static_cast<double>(big.num_objects),
              5.0 * static_cast<double>(base.num_objects),
              static_cast<double>(base.num_objects) * 0.01 + 1.0);
  EXPECT_NEAR(static_cast<double>(big.num_users),
              5.0 * static_cast<double>(base.num_users),
              static_cast<double>(base.num_users) * 0.01 + 1.0);
  EXPECT_NEAR(static_cast<double>(big.total_requests),
              5.0 * static_cast<double>(base.total_requests),
              static_cast<double>(base.total_requests) * 0.01 + 1.0);
  EXPECT_EQ(SiteProfile::V1(kMaxProfileScale).num_objects,
            static_cast<std::uint32_t>(kMaxProfileScale) * base.num_objects);
}

TEST(SiteProfileTest, PaperAdultSitesOrder) {
  const auto sites = SiteProfile::PaperAdultSites(0.1);
  ASSERT_EQ(sites.size(), 5u);
  EXPECT_EQ(sites[0].name, "V-1");
  EXPECT_EQ(sites[1].name, "V-2");
  EXPECT_EQ(sites[2].name, "P-1");
  EXPECT_EQ(sites[3].name, "P-2");
  EXPECT_EQ(sites[4].name, "S-1");
}

TEST(SiteProfileTest, ValidateCatchesBrokenProfiles) {
  SiteProfile p = SiteProfile::V1(0.01);
  p.object_class_mix = {0.5, 0.2, 0.2};  // sums to 0.9
  EXPECT_THROW(p.Validate(), std::invalid_argument);

  p = SiteProfile::V1(0.01);
  p.device_mix = {2.0, 0.0, 0.0, 0.0};
  EXPECT_THROW(p.Validate(), std::invalid_argument);

  p = SiteProfile::V1(0.01);
  p.diurnal_amplitude = 1.0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);

  p = SiteProfile::V1(0.01);
  p.mean_requests_per_session = 0.5;
  EXPECT_THROW(p.Validate(), std::invalid_argument);

  p = SiteProfile::V1(0.01);
  p.watch_fraction_mean = 0.0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
}

}  // namespace
}  // namespace atlas::synth
