#include "analysis/composition.h"

#include <gtest/gtest.h>

#include "analysis_fixtures.h"
#include "cdn/simulator.h"

namespace atlas::analysis {
namespace {

using testing::MakeRecord;
using testing::RecordSpec;

TEST(CompositionTest, CountsObjectsOncePerUrl) {
  trace::TraceBuffer buf;
  // Object 1 (video) requested 3 times; object 2 (image) once.
  for (int i = 0; i < 3; ++i) {
    buf.Add(MakeRecord({.t = i, .url = 1, .type = trace::FileType::kMp4,
                        .bytes = 500}));
  }
  buf.Add(MakeRecord({.t = 9, .url = 2, .type = trace::FileType::kJpg,
                      .bytes = 100}));
  const auto result = ComputeComposition(buf, "X");
  EXPECT_EQ(result.objects[0], 1u);   // video
  EXPECT_EQ(result.objects[1], 1u);   // image
  EXPECT_EQ(result.requests[0], 3u);
  EXPECT_EQ(result.requests[1], 1u);
  EXPECT_EQ(result.bytes[0], 1500u);
  EXPECT_EQ(result.bytes[1], 100u);
  EXPECT_DOUBLE_EQ(result.ObjectShare(trace::ContentClass::kVideo), 0.5);
  EXPECT_DOUBLE_EQ(result.RequestShare(trace::ContentClass::kVideo), 0.75);
  EXPECT_DOUBLE_EQ(result.ByteShare(trace::ContentClass::kVideo),
                   1500.0 / 1600.0);
}

TEST(CompositionTest, EmptyTraceSafe) {
  const auto result = ComputeComposition(trace::TraceBuffer{}, "E");
  EXPECT_EQ(result.TotalObjects(), 0u);
  EXPECT_DOUBLE_EQ(result.ObjectShare(trace::ContentClass::kImage), 0.0);
}

TEST(CompositionTest, OtherClassCounted) {
  trace::TraceBuffer buf;
  buf.Add(MakeRecord({.url = 3, .type = trace::FileType::kJs}));
  const auto result = ComputeComposition(buf, "X");
  EXPECT_EQ(result.objects[2], 1u);
}

TEST(DatasetSummaryTest, Fields) {
  trace::TraceBuffer buf;
  buf.Add(MakeRecord({.t = 100, .url = 1, .user = 1, .bytes = 10}));
  buf.Add(MakeRecord({.t = 900, .url = 2, .user = 2, .bytes = 30}));
  buf.Add(MakeRecord({.t = 500, .url = 1, .user = 1, .bytes = 5}));
  const auto s = ComputeDatasetSummary(buf, "X");
  EXPECT_EQ(s.records, 3u);
  EXPECT_EQ(s.users, 2u);
  EXPECT_EQ(s.objects, 2u);
  EXPECT_EQ(s.bytes, 45u);
  EXPECT_EQ(s.start_ms, 100);
  EXPECT_EQ(s.end_ms, 900);
}

// Closed loop: the generator's catalog class mix must be recovered from the
// simulated trace within sampling error (Fig. 1 validation).
TEST(CompositionClosedLoopTest, V1IsVideoDominated) {
  cdn::SimulatorConfig config;
  const auto result =
      cdn::SimulateSite(synth::SiteProfile::V1(0.01), 0, config, 5);
  const auto comp = ComputeComposition(result.trace, "V-1");
  // Fig. 2: ~99% of V-1 requests and bytes are video.
  EXPECT_GT(comp.RequestShare(trace::ContentClass::kVideo), 0.9);
  EXPECT_GT(comp.ByteShare(trace::ContentClass::kVideo), 0.95);
}

TEST(CompositionClosedLoopTest, P1IsImageDominated) {
  cdn::SimulatorConfig config;
  const auto result =
      cdn::SimulateSite(synth::SiteProfile::P1(0.01), 0, config, 5);
  const auto comp = ComputeComposition(result.trace, "P-1");
  EXPECT_GT(comp.RequestShare(trace::ContentClass::kImage), 0.9);
  EXPECT_GT(comp.ObjectShare(trace::ContentClass::kImage), 0.95);
}

}  // namespace
}  // namespace atlas::analysis
