#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace atlas::util {
namespace {

TEST(CsvWriterTest, PlainRow) {
  std::ostringstream out;
  CsvWriter w(out);
  w.Field("a").Field("b").Field(std::uint64_t{42});
  w.EndRow();
  EXPECT_EQ(out.str(), "a,b,42\n");
  EXPECT_EQ(w.rows_written(), 1u);
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter w(out);
  w.Field("has,comma").Field("has\"quote").Field("has\nnewline");
  w.EndRow();
  EXPECT_EQ(out.str(), "\"has,comma\",\"has\"\"quote\",\"has\nnewline\"\n");
}

TEST(CsvWriterTest, DoubleFormatting) {
  std::ostringstream out;
  CsvWriter w(out);
  w.Field(3.14159, 2).Field(std::int64_t{-5});
  w.EndRow();
  EXPECT_EQ(out.str(), "3.14,-5\n");
}

TEST(CsvWriterTest, RowHelper) {
  std::ostringstream out;
  CsvWriter w(out);
  w.Row({"x", "y"});
  w.Row({"1", "2"});
  EXPECT_EQ(out.str(), "x,y\n1,2\n");
}

TEST(ParseCsvLineTest, Plain) {
  const auto f = ParseCsvLine("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(ParseCsvLineTest, Quoted) {
  const auto f = ParseCsvLine("\"has,comma\",\"x\"\"y\"");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "has,comma");
  EXPECT_EQ(f[1], "x\"y");
}

TEST(ParseCsvLineTest, EmptyFields) {
  const auto f = ParseCsvLine(",,");
  ASSERT_EQ(f.size(), 3u);
  for (const auto& x : f) EXPECT_TRUE(x.empty());
}

TEST(ParseCsvLineTest, UnterminatedQuoteThrows) {
  EXPECT_THROW(ParseCsvLine("\"open"), std::invalid_argument);
}

TEST(CsvRoundTripTest, WriterOutputParsesBack) {
  std::ostringstream out;
  CsvWriter w(out);
  const std::vector<std::string> row = {"plain", "with,comma", "wi\"th",
                                        "multi\nline"};
  w.Row(row);
  // Strip trailing newline; ParseCsvLine is single-line, but the embedded
  // newline is inside quotes... our writer quotes it, so split at the real
  // terminator only.
  std::string line = out.str();
  line.pop_back();
  // ParseCsvLine handles embedded newline since it is inside quotes.
  const auto parsed = ParseCsvLine(line);
  EXPECT_EQ(parsed, row);
}

}  // namespace
}  // namespace atlas::util
