#include "util/par.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/hash.h"

namespace atlas::util {
namespace {

TEST(DefaultThreadsTest, AlwaysAtLeastOne) {
  EXPECT_GE(DefaultThreads(), 1);
  EXPECT_GE(ResolveThreads(0), 1);
  EXPECT_GE(ResolveThreads(-3), 1);
  EXPECT_EQ(ResolveThreads(5), 5);
}

TEST(DefaultThreadsTest, PinAndRestore) {
  const int hardware = DefaultThreads();
  SetDefaultThreads(3);
  EXPECT_EQ(DefaultThreads(), 3);
  EXPECT_EQ(ResolveThreads(0), 3);
  SetDefaultThreads(0);  // restore hardware default
  EXPECT_EQ(DefaultThreads(), hardware);
}

TEST(ParallelForTest, EmptyRangeNeverCalls) {
  std::atomic<int> calls{0};
  ParallelFor(0, [&](std::size_t) { ++calls; }, 4);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SingleElement) {
  std::atomic<int> calls{0};
  std::size_t seen = 99;
  ParallelFor(1, [&](std::size_t i) { ++calls; seen = i; }, 8);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen, 0u);
}

TEST(ParallelForTest, EveryIndexExactlyOnce) {
  constexpr std::size_t kN = 2000;
  std::vector<std::atomic<int>> counts(kN);
  ParallelFor(kN, [&](std::size_t i) { ++counts[i]; }, 4);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, WritesToDisjointSlotsAreDeterministic) {
  // The determinism contract: shard i's output depends only on i.
  std::vector<std::uint64_t> once(512), twice(512);
  const auto fill = [](std::vector<std::uint64_t>& out, int threads) {
    ParallelFor(out.size(),
                [&](std::size_t i) { out[i] = Mix64(i * 2654435761u); },
                threads);
  };
  fill(once, 1);
  fill(twice, 8);
  EXPECT_EQ(once, twice);
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  EXPECT_THROW(
      ParallelFor(
          100,
          [](std::size_t i) {
            if (i == 57) throw std::runtime_error("shard 57 failed");
          },
          4),
      std::runtime_error);
}

TEST(ParallelForTest, ExceptionAbortsRemainingShards) {
  std::atomic<int> executed{0};
  try {
    ParallelFor(
        100000,
        [&](std::size_t i) {
          ++executed;
          if (i == 0) throw std::runtime_error("early failure");
        },
        2);
    FAIL() << "expected throw";
  } catch (const std::runtime_error&) {
  }
  // The abort flag stops workers long before the full range drains. Keep the
  // bound loose: the other workers may each complete a few shards first.
  EXPECT_LT(executed.load(), 100000);
}

TEST(ParallelForTest, NestedCallsRunInline) {
  std::vector<std::atomic<int>> counts(64);
  std::atomic<int> nested_regions{0};
  ParallelFor(
      8,
      [&](std::size_t outer) {
        if (InParallelRegion()) ++nested_regions;
        // A nested ParallelFor must degrade to an inline serial loop rather
        // than spawning a pool inside a pool.
        ParallelFor(
            8, [&](std::size_t inner) { ++counts[outer * 8 + inner]; }, 4);
      },
      4);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
  // With >1 resolved threads every shard executes inside a region.
  EXPECT_EQ(nested_regions.load(), 8);
}

TEST(ThreadPoolTest, SizeCountsCallerAsExecutor) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  ThreadPool solo(1);
  EXPECT_EQ(solo.size(), 1);
}

TEST(ThreadPoolTest, RunsAllShards) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(333);
  pool.Run(counts.size(), [&](std::size_t i) { ++counts[i]; });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ReusableAcrossJobsAndAfterFailure) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.Run(10, [&](std::size_t) { ++total; });
  EXPECT_THROW(
      pool.Run(10, [](std::size_t i) {
        if (i == 3) throw std::invalid_argument("boom");
      }),
      std::invalid_argument);
  pool.Run(10, [&](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 20);
}

TEST(ThreadPoolTest, NestedRunRejected) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.Run(4, [&](std::size_t) { pool.Run(2, [](std::size_t) {}); }),
      std::logic_error);
  // Nested use of a *different* pool is rejected too (it would deadlock the
  // waiting outer workers just the same under exhaustion).
  ThreadPool other(2);
  EXPECT_THROW(
      pool.Run(4, [&](std::size_t) { other.Run(2, [](std::size_t) {}); }),
      std::logic_error);
}

TEST(ParallelReduceTest, EmptyRangeReturnsInit) {
  const auto sum = ParallelReduce<std::uint64_t>(
      0, 42, [](std::size_t i) { return i; },
      [](const std::uint64_t& a, const std::uint64_t& b) { return a + b; }, 4);
  EXPECT_EQ(sum, 42u);
}

TEST(ParallelReduceTest, OrderedFoldMatchesSerial) {
  constexpr std::size_t kN = 10000;
  const auto map = [](std::size_t i) { return static_cast<double>(i) * 0.1; };
  const auto combine = [](const double& a, const double& b) { return a + b; };
  const double serial =
      ParallelReduce<double>(kN, 0.0, map, combine, 1);
  const double parallel =
      ParallelReduce<double>(kN, 0.0, map, combine, 8);
  // Bit-identical, not just approximately equal: the fold is ordered.
  EXPECT_EQ(serial, parallel);
}

TEST(ShardedRngTest, DeterministicPerShard) {
  ShardedRng a(1234, 16);
  ShardedRng b(1234, 16);
  ASSERT_EQ(a.shards(), 16u);
  for (std::size_t s = 0; s < a.shards(); ++s) {
    EXPECT_EQ(a.seed(s), b.seed(s));
    Rng ra = a.MakeRng(s);
    Rng rb = b.MakeRng(s);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(ra.Next(), rb.Next());
  }
}

TEST(ShardedRngTest, StreamsAreDistinct) {
  ShardedRng streams(99, 64);
  std::set<std::uint64_t> seeds;
  for (std::size_t s = 0; s < streams.shards(); ++s) {
    seeds.insert(streams.seed(s));
  }
  EXPECT_EQ(seeds.size(), 64u);
  // Different base seeds give different stream families.
  ShardedRng other(100, 64);
  EXPECT_NE(streams.seed(0), other.seed(0));
}

TEST(ApportionTest, QuotasSumExactly) {
  const std::vector<double> weights = {3.0, 1.0, 0.5, 0.0, 10.0};
  for (std::uint64_t total : {0ULL, 1ULL, 7ULL, 1000ULL, 99999ULL}) {
    const auto quotas = ApportionByWeight(total, weights);
    ASSERT_EQ(quotas.size(), weights.size());
    EXPECT_EQ(std::accumulate(quotas.begin(), quotas.end(), 0ULL), total);
  }
}

TEST(ApportionTest, ProportionalAndDeterministic) {
  const std::vector<double> weights = {1.0, 3.0};
  const auto quotas = ApportionByWeight(1000, weights);
  EXPECT_EQ(quotas[0], 250u);
  EXPECT_EQ(quotas[1], 750u);
  EXPECT_EQ(ApportionByWeight(1000, weights), quotas);
  // Zero mass falls back to an even split.
  const auto even = ApportionByWeight(10, {0.0, 0.0, 0.0});
  EXPECT_EQ(std::accumulate(even.begin(), even.end(), 0ULL), 10u);
}

// Stress case sized to surface races under TSan: many small jobs with
// shared-counter traffic and cross-thread visibility of the results vector.
TEST(ParallelForTest, StressManyJobs) {
  constexpr std::size_t kJobs = 50;
  constexpr std::size_t kShards = 400;
  std::atomic<std::uint64_t> checksum{0};
  for (std::size_t job = 0; job < kJobs; ++job) {
    std::vector<std::uint64_t> slots(kShards, 0);
    ParallelFor(
        kShards,
        [&](std::size_t i) { slots[i] = Mix64(job * kShards + i); },
        8);
    std::uint64_t folded = 0;
    for (const auto v : slots) folded = HashCombine(folded, v);
    checksum.fetch_add(folded);
  }
  EXPECT_NE(checksum.load(), 0u);
}

}  // namespace
}  // namespace atlas::util
