#include "cdn/revalidation.h"

#include "cdn/policies.h"
#include "ckpt/checkpoint.h"

#include <gtest/gtest.h>

#include <sstream>

namespace atlas::cdn {
namespace {

using synth::PatternType;

TEST(RevalidationOracleTest, DefaultsForUnknownObjects) {
  RevalidationOracle oracle;
  EXPECT_EQ(oracle.TtlFor(12345), oracle.policy().default_ttl_ms);
  EXPECT_EQ(oracle.classified_count(), 0u);
}

TEST(RevalidationOracleTest, PaperPrescription) {
  // Diurnal/long-lived get long expiry; short-lived hourly-scale.
  RevalidationOracle oracle;
  EXPECT_GT(oracle.TtlForPattern(PatternType::kDiurnal),
            oracle.TtlForPattern(PatternType::kShortLived));
  EXPECT_GT(oracle.TtlForPattern(PatternType::kLongLived),
            oracle.TtlForPattern(PatternType::kShortLived));
  EXPECT_EQ(oracle.TtlForPattern(PatternType::kShortLived), 3600 * 1000);
}

TEST(RevalidationOracleTest, ClassifiedObjectsUseTheirPattern) {
  RevalidationOracle oracle;
  oracle.Classify(1, PatternType::kDiurnal);
  oracle.Classify(2, PatternType::kShortLived);
  EXPECT_EQ(oracle.TtlFor(1), oracle.policy().diurnal_ttl_ms);
  EXPECT_EQ(oracle.TtlFor(2), oracle.policy().short_lived_ttl_ms);
  EXPECT_EQ(oracle.classified_count(), 2u);
  // Reclassification overwrites.
  oracle.Classify(1, PatternType::kShortLived);
  EXPECT_EQ(oracle.TtlFor(1), oracle.policy().short_lived_ttl_ms);
}

TEST(OracleTtlCacheTest, PerKeyLifetimes) {
  // Key 1 lives 100ms, key 2 lives 1000ms.
  OracleTtlCache cache(1 << 20, [](std::uint64_t key) {
    return key == 1 ? 100LL : 1000LL;
  });
  cache.Access(1, 10, 0);
  cache.Access(2, 10, 0);
  // At t=150: key 1 expired, key 2 fresh.
  EXPECT_EQ(cache.Access(1, 10, 150), trace::CacheStatus::kMiss);
  EXPECT_EQ(cache.Access(2, 10, 150), trace::CacheStatus::kHit);
  EXPECT_EQ(cache.expired_lookups(), 1u);
}

TEST(OracleTtlCacheTest, BehavesLikeCacheOtherwise) {
  OracleTtlCache cache(100, [](std::uint64_t) { return 1000000LL; });
  EXPECT_EQ(cache.Access(1, 60, 0), trace::CacheStatus::kMiss);
  EXPECT_EQ(cache.Access(1, 60, 1), trace::CacheStatus::kHit);
  // Evicts LRU under pressure.
  cache.Access(2, 60, 2);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_LE(cache.used_bytes(), 100u);
}

TEST(OracleTtlCacheTest, RejectsBadConstruction) {
  EXPECT_THROW(OracleTtlCache(100, nullptr), std::invalid_argument);
}

TEST(OracleTtlCacheTest, OracleDrivenReplayBeatsUniformShortTtl) {
  // Synthetic demand: a "diurnal" object re-requested every 2h for a long
  // time; a "short-lived" object requested densely then never again. A
  // uniform 1h TTL forces constant refetches of the diurnal object; the
  // oracle's 24h diurnal TTL does not.
  RevalidationOracle oracle;
  oracle.Classify(1, PatternType::kDiurnal);
  oracle.Classify(2, PatternType::kShortLived);

  const auto replay = [](Cache& cache) {
    constexpr std::int64_t kHour = 3600 * 1000;
    // Short-lived burst: every 5 min for 2 hours.
    for (int i = 0; i < 24; ++i) {
      cache.Access(2, 1000, i * 5 * 60 * 1000);
    }
    // Diurnal: every 2 hours all week.
    for (int i = 0; i < 84; ++i) {
      cache.Access(1, 1000, i * 2 * kHour);
    }
    return cache.stats().HitRatio();
  };

  OracleTtlCache oracle_cache(1 << 20, [&](std::uint64_t key) {
    return oracle.TtlFor(key);
  });
  TtlLruCache uniform_short(1 << 20, 3600 * 1000);
  const double oracle_ratio = replay(oracle_cache);
  const double uniform_ratio = replay(uniform_short);
  EXPECT_GT(oracle_ratio, uniform_ratio + 0.2);
}

TEST(OracleTtlCacheTest, CheckpointRoundTripPreservesExpiryAndRecency) {
  const auto ttl_fn = [](std::uint64_t key) {
    return key == 1 ? 100LL : 1000LL;
  };
  OracleTtlCache cache(200, ttl_fn);
  cache.Access(1, 50, 0);
  cache.Access(2, 50, 0);
  cache.Access(3, 50, 0);
  cache.Access(2, 50, 1);  // promote 2; LRU order is now 2, 3, 1
  cache.Access(1, 50, 150);  // expired -> counted + reinserted

  std::ostringstream buf;
  {
    ckpt::Writer w(buf);
    w.BeginSection("cache", 1);
    cache.SaveState(w);
    w.EndSection();
    w.Finish();
  }
  OracleTtlCache restored(200, ttl_fn);
  {
    std::istringstream in(buf.str());
    ckpt::Reader r(in);
    r.BeginSection("cache", 1);
    restored.RestoreState(r);
    r.EndSection();
  }
  EXPECT_EQ(restored.expired_lookups(), cache.expired_lookups());
  EXPECT_EQ(restored.used_bytes(), cache.used_bytes());
  EXPECT_EQ(restored.stats().hits, cache.stats().hits);
  EXPECT_EQ(restored.stats().misses, cache.stats().misses);
  // Entry 1 was reinserted at t=150 with a 100ms lifetime: fresh at 200,
  // stale at 300 — the latched expiry must survive the round trip.
  EXPECT_EQ(restored.Access(1, 50, 200), trace::CacheStatus::kHit);
  OracleTtlCache restored2(200, ttl_fn);
  {
    std::istringstream in(buf.str());
    ckpt::Reader r(in);
    r.BeginSection("cache", 1);
    restored2.RestoreState(r);
    r.EndSection();
  }
  EXPECT_EQ(restored2.Access(1, 50, 300), trace::CacheStatus::kMiss);
  // Under pressure both evict the same victim: the LRU tail (entry 3, since
  // 1 and 2 were both touched later).
  cache.Access(9, 150, 200);
  restored.Access(9, 150, 200);
  EXPECT_EQ(cache.Contains(3), restored.Contains(3));
  EXPECT_FALSE(restored.Contains(3));
}

}  // namespace
}  // namespace atlas::cdn
