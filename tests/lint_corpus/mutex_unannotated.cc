// Fixture: mutex-unannotated fires on line 15 (mu_ is locked but no state
// is ATLAS_GUARDED_BY it, so the analysis protects nothing).
#include "util/mutex.h"

namespace fixture {

class Counter {
 public:
  void Increment() {
    util::MutexLock lock(mu_);
    ++count_;
  }

 private:
  util::Mutex mu_;
  long count_ = 0;
};

}  // namespace fixture
