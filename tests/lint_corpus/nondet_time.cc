// Fixture: nondet-time fires on line 5.
#include <ctime>

long Now() {
  return static_cast<long>(time(nullptr));
}
