// Fixture: unordered-iter fires on line 11 (+= accumulation while ranging
// over a member declared std::unordered_map). Line 14's loop must NOT fire:
// its range is a call expression, assumed to impose its own order.
#include <unordered_map>
#include <vector>

struct Histogram {
  std::unordered_map<int, long> counts;
  long total = 0;
  void Sum() {
    for (const auto& [bucket, n] : counts) total += n;
  }
  void SumSorted() {
    for (const int k : SortedKeys(counts)) total += k;
  }
  static std::vector<int> SortedKeys(const std::unordered_map<int, long>& m);
};
