// Fixture: perrecord-in-hotpath fires on the per-record adapter calls in
// the drain loop (lines 9 and 10). A free declaration that merely shares
// the name (line 14) and the block-path calls (line 17) must NOT fire.
#include "trace/block.h"

using namespace atlas;

void Drain(trace::PerRecordSource& source, trace::PerRecordSink& sink) {
  while (const auto* r = source.NextRecord()) {
    sink.PushRecord(*r);
  }
}

const trace::LogRecord* NextRecord();

void DrainBlocks(trace::BlockSource& source, trace::BlockSink& sink) {
  while (const auto* b = source.NextBlock()) sink.WriteBlock(*b);
}
