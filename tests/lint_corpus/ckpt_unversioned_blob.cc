// Fixture: ckpt-unversioned-blob fires on the raw ostream write (line 9)
// and the fwrite (line 10) inside a SaveState body. The SaveCacheState
// declaration (line 13) has no body, and the raw write in a non-SaveState
// function (line 16) is out of scope; neither must fire.
#include <cstdio>
#include <ostream>

void SaveState(std::ostream& out, const char* data, std::FILE* f) {
  out.write(data, 4);
  std::fwrite(data, 1, 4, f);
}

void SaveCacheState(std::ostream& out);

void Flush(std::ostream& out, const char* data) {
  out.write(data, 4);
}
