// Fixture: unchecked-index-cast fires on lines 8 and 9 (both spellings of
// the narrowing cast). Line 11 must NOT fire: CheckedIndexU32 is the
// sanctioned conversion. Line 12 must NOT fire: widening casts are fine.
#include <cstdint>

std::uint64_t Sample();

std::uint32_t a = static_cast<std::uint32_t>(Sample());
std::uint32_t b = static_cast<uint32_t>(Sample());

std::uint32_t c = CheckedIndexU32(Sample(), "object");
std::uint64_t d = static_cast<std::uint64_t>(42);
