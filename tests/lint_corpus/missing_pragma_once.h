// Fixture: missing-pragma-once fires on line 1 (no #pragma once anywhere).

inline int FortyTwo() { return 42; }
