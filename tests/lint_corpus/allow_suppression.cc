// Fixture: every finding here is suppressed; LintFile must return nothing.
#include <cstdlib>

int SameLine() {
  return rand();  // atlas-lint: allow(nondet-rand)  same-line suppression
}

int BlockAbove() {
  // atlas-lint: allow(nondet-rand)  suppression from the first line of the
  // comment block sitting directly above the finding.
  return rand();
}
