// Lexer regression: raw string literal bodies are scrubbed. Every banned
// token below lives inside a raw string and must not fire; the real calls
// on the last code line prove the lexer resumed after each delimiter.
const char* kPlain = R"(rand() std::random_device new delete)";
const char* kDelim = R"sql(time(nullptr) ")" still inside )sql";
const char* kWide = LR"(system_clock srand(7))";
const char* kMulti = R"(first line
rand() second line)";
const char* kGlued = FOUR"(x";
int Fixture() { int* p = new int(1); delete p; return rand(); }
const char* kTail = "y)";
