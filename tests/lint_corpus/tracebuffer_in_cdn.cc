// Fixture: tracebuffer-in-cdn fires on the buffered member (line 7) and on
// the by-value return type (line 11). The pointer member (line 8) and the
// const-reference parameters are read-only views and must NOT fire.
#include "trace/trace_buffer.h"

struct LegacyResult {
  trace::TraceBuffer trace;
  const trace::TraceBuffer* view = nullptr;
};

trace::TraceBuffer Merge(const trace::TraceBuffer& a);

void Consume(const trace::TraceBuffer& buffer);
