// Suppression hygiene: a pragma that stops suppressing anything is itself
// a finding, so stale escape hatches cannot accumulate in the tree.
int Used() {
  return rand();  // atlas-lint: allow(nondet-rand)  deliberate in fixture
}
// atlas-lint: allow(nondet-rand)  nothing below calls rand anymore
int Stale() { return 7; }
int Unknown() { return 8; }  // atlas-lint: allow(not-a-rule)
