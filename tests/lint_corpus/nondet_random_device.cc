// Fixture: nondet-random-device fires on line 5.
#include <random>

unsigned Entropy() {
  std::random_device rd;
  return rd();
}
