#include "util/locks.h"
void Pair::AcquireAB() {
  MutexLock la(a_);
  MutexLock lb(b_);
}
