#include "util/locks.h"
void Pair::AcquireBA() {
  MutexLock lb(b_);
  MutexLock la(a_);
}
