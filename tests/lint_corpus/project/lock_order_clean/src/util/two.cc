#include "util/locks.h"
void Pair::AcquireTwo() {
  MutexLock la(a_);
  MutexLock lb(b_);
}
