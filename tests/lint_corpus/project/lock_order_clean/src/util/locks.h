#pragma once
struct Pair {
  Mutex a_;
  Mutex b_;
  int xa_ ATLAS_GUARDED_BY(a_) = 0;
  int xb_ ATLAS_GUARDED_BY(b_) = 0;
  void AcquireOne();
  void AcquireTwo();
};
