#include "util/locks.h"
void Pair::AcquireOne() {
  MutexLock la(a_);
  MutexLock lb(b_);
}
