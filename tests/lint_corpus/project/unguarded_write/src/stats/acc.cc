#include "stats/acc.h"
#include "util/par.h"
void Acc::Accumulate(const std::vector<long>& rows) {
  util::ParallelFor(rows.size(), [&](std::size_t i) {
    total_ += rows[i];
    guarded_ += rows[i];
    hits_ += 1;
    // atlas-lint: allow(unguarded-parallel-write)  profiling-only counter
    relaxed_ += rows[i];
  });
}
