#pragma once
#include <atomic>
#include <vector>
struct Acc {
  Mutex mu_;
  long total_ = 0;
  long guarded_ ATLAS_GUARDED_BY(mu_) = 0;
  std::atomic<long> hits_{0};
  long relaxed_ = 0;
  void Accumulate(const std::vector<long>& rows);
};
