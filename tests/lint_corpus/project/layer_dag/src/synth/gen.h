#pragma once
inline int Gen() { return 2; }
