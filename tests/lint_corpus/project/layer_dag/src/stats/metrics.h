#pragma once
#include "synth/gen.h"
#include "util/base.h"
inline int Metric() { return Gen() + Base(); }
