#include "stats/metrics.h"
int Use() { return Metric(); }
