#pragma once
#include "energy/model.h"
#include "util/base.h"
inline int Delivery() { return Joules() + Base(); }
