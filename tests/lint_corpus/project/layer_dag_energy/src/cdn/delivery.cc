#include "cdn/delivery.h"
int Serve() { return Delivery(); }
