#pragma once
inline int Base() { return 1; }
