#pragma once
inline int Joules() { return 3; }
