#include <cstddef>
#include <vector>
struct Table { template <class F> void ForEach(F f) const { f(0L, 0.0); } };
double SumRows(const std::vector<double>& rows) {
  double total = 0;
  util::ParallelFor(rows.size(), [&](std::size_t i) {
    total += rows[i];
  });
  return total;
}
double SumTable(const Table& t) {
  double sum = 0;
  t.ForEach([&](long key, double value) { sum += value; });
  return sum;
}
