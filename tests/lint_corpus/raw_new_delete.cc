// Fixture: raw-new-delete fires on lines 4 and 6. Line 10's `= delete`
// (a deleted special member) must NOT fire.
int Leaky() {
  int* p = new int(7);
  const int v = *p;
  delete p;
  return v;
}
struct NoCopy {
  NoCopy(const NoCopy&) = delete;
};
