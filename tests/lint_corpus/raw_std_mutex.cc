// Fixture: raw-std-mutex fires on lines 5 and 8 (std::mutex and
// std::lock_guard are invisible to Clang -Wthread-safety).
#include <mutex>

std::mutex g_fixture_mutex;

int Locked() {
  std::lock_guard<std::mutex> lock(g_fixture_mutex);
  return 1;
}
