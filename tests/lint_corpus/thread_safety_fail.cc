// Compile-fail fixture for the Clang-only `thread_safety_compile_fail`
// ctest (WILL_FAIL): reading `count_` without holding `mu_` must be a hard
// error under -Wthread-safety -Werror=thread-safety. If this file ever
// compiles cleanly there, the annotations in util/mutex.h have stopped
// working and the test fails.
#include "util/mutex.h"
#include "util/thread_annotations.h"

class Unsafe {
 public:
  void Increment() {
    atlas::util::MutexLock lock(mu_);
    ++count_;
  }
  // BUG (deliberate): no lock held while reading guarded state.
  long Read() const { return count_; }

 private:
  mutable atlas::util::Mutex mu_;
  long count_ ATLAS_GUARDED_BY(mu_) = 0;
};

int main() {
  Unsafe u;
  u.Increment();
  return static_cast<int>(u.Read());
}
