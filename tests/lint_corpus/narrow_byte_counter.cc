// Fixture: narrow-byte-counter fires on lines 5 and 6 (only in src/cdn/ or
// src/analysis/ scope). Line 7's std::uint64_t and line 8's unsigned long
// must NOT fire.
#include <cstdint>
int total_bytes = 0;
unsigned int object_size = 0;
std::uint64_t good_bytes = 0;
unsigned long also_fine_bytes = 0;
