// Fixture: nondet-system-clock fires on line 5.
#include <chrono>

long NowMs() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             now.time_since_epoch())
      .count();
}
