// Lexer regression: backslash line continuations. The comment below
// continues across the splice, so the banned tokens on the next physical
// line are still comment text — and line numbers stay aligned with disk.
// spliced comment \
rand() time(nullptr) new delete std::random_device
#define COUNT(x) \
  static_cast<long>(sizeof(x))
const char* kSplit = "a \
rand() b";
int Fixture() { return rand(); }
