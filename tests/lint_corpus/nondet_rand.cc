// Fixture: nondet-rand fires on line 5.
#include <cstdlib>

int Roll() {
  return rand() % 6;
}
