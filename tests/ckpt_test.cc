// atlas::ckpt container contract (ckpt/checkpoint.h):
//
//   1. every typed primitive round-trips exactly;
//   2. a checkpoint that is corrupted, truncated, version-bumped, or
//      layout-shifted fails loudly at open/read time — never with a
//      wrong-but-plausible restore;
//   3. WriteCheckpointFile commits atomically: a failed save leaves the
//      previous checkpoint untouched.
#include "ckpt/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace atlas::ckpt {
namespace {

std::string SampleCheckpoint() {
  std::ostringstream out;
  Writer w(out);
  w.BeginSection("alpha", 3);
  w.WriteU8(7);
  w.WriteU16(65535);
  w.WriteU32(123456789);
  w.WriteU64(0xdeadbeefcafebabeULL);
  w.WriteI64(-42);
  w.WriteDouble(3.25);
  w.WriteBool(true);
  w.WriteString("hello ckpt");
  const unsigned char blob[] = {1, 2, 3, 4, 5};
  w.WriteBytes(blob, sizeof(blob));
  w.WriteVecU64({10, 20, 30});
  w.WriteVecDouble({0.5, -1.5});
  w.EndSection();
  w.BeginSection("beta", 1);
  w.WriteU64(99);
  w.EndSection();
  w.Finish();
  return out.str();
}

TEST(CkptRoundTripTest, EveryPrimitiveSurvives) {
  std::istringstream in(SampleCheckpoint());
  Reader r(in);
  EXPECT_EQ(r.section_count(), 2u);
  EXPECT_TRUE(r.HasSection("alpha"));
  EXPECT_TRUE(r.HasSection("beta"));
  EXPECT_FALSE(r.HasSection("gamma"));
  EXPECT_EQ(r.SectionNames(), (std::vector<std::string>{"alpha", "beta"}));

  EXPECT_EQ(r.BeginSection("alpha"), 3u);
  EXPECT_EQ(r.ReadU8(), 7);
  EXPECT_EQ(r.ReadU16(), 65535);
  EXPECT_EQ(r.ReadU32(), 123456789u);
  EXPECT_EQ(r.ReadU64(), 0xdeadbeefcafebabeULL);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_EQ(r.ReadDouble(), 3.25);
  EXPECT_TRUE(r.ReadBool());
  EXPECT_EQ(r.ReadString(), "hello ckpt");
  EXPECT_EQ(r.ReadBytes(), (std::vector<unsigned char>{1, 2, 3, 4, 5}));
  EXPECT_EQ(r.ReadVecU64(), (std::vector<std::uint64_t>{10, 20, 30}));
  EXPECT_EQ(r.ReadVecDouble(), (std::vector<double>{0.5, -1.5}));
  r.EndSection();

  r.BeginSection("beta", 1);
  EXPECT_EQ(r.ReadU64(), 99u);
  r.EndSection();
}

TEST(CkptRoundTripTest, EmptyCheckpointIsValid) {
  std::ostringstream out;
  Writer w(out);
  w.Finish();
  std::istringstream in(out.str());
  Reader r(in);
  EXPECT_EQ(r.section_count(), 0u);
}

TEST(CkptFailClearTest, MissingSectionThrows) {
  std::istringstream in(SampleCheckpoint());
  Reader r(in);
  EXPECT_THROW(r.BeginSection("gamma"), std::runtime_error);
}

TEST(CkptFailClearTest, SectionVersionMismatchThrows) {
  std::istringstream in(SampleCheckpoint());
  Reader r(in);
  EXPECT_THROW(r.BeginSection("beta", 2), std::runtime_error);
}

TEST(CkptFailClearTest, ExpectVersionMismatchNamesTheObject) {
  std::ostringstream out;
  Writer w(out);
  w.BeginSection("s", 1);
  w.WriteVersion(7);
  w.EndSection();
  w.Finish();
  std::istringstream in(out.str());
  Reader r(in);
  r.BeginSection("s", 1);
  try {
    r.ExpectVersion("widget accumulator", 8);
    FAIL() << "version mismatch not detected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("widget accumulator"),
              std::string::npos)
        << e.what();
  }
}

TEST(CkptFailClearTest, CorruptedPayloadByteFailsAtOpen) {
  std::string data = SampleCheckpoint();
  // Flip one payload byte near the middle; the section CRC must catch it
  // during the Reader's up-front scan.
  data[data.size() / 2] ^= 0x01;
  std::istringstream in(data);
  EXPECT_THROW(Reader r(in), std::runtime_error);
}

TEST(CkptFailClearTest, TruncationFailsAtOpen) {
  const std::string data = SampleCheckpoint();
  for (const std::size_t keep :
       {data.size() - 1, data.size() / 2, std::size_t{6}, std::size_t{2}}) {
    std::istringstream in(data.substr(0, keep));
    EXPECT_THROW(Reader r(in), std::runtime_error) << "keep=" << keep;
  }
}

TEST(CkptFailClearTest, BadMagicThrows) {
  std::istringstream in("NOTACKPT");
  EXPECT_THROW(Reader r(in), std::runtime_error);
}

TEST(CkptFailClearTest, BumpedFormatVersionThrows) {
  std::string data = SampleCheckpoint();
  data[4] = static_cast<char>(kFormatVersion + 1);  // u32 LE low byte
  std::istringstream in(data);
  try {
    Reader r(in);
    FAIL() << "bumped format version not detected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("format version"), std::string::npos)
        << e.what();
  }
}

TEST(CkptFailClearTest, DuplicateSectionRejected) {
  std::ostringstream out;
  Writer w(out);
  w.BeginSection("dup", 1);
  w.WriteU8(1);
  w.EndSection();
  w.BeginSection("dup", 1);
  w.WriteU8(2);
  w.EndSection();
  w.Finish();
  std::istringstream in(out.str());
  EXPECT_THROW(Reader r(in), std::runtime_error);
}

TEST(CkptFailClearTest, UnreadBytesAtEndSectionThrow) {
  // A restore that consumes less than the blob holds is reading a different
  // layout than was saved; EndSection must refuse to paper over it.
  std::istringstream in(SampleCheckpoint());
  Reader r(in);
  r.BeginSection("alpha");
  r.ReadU8();
  EXPECT_THROW(r.EndSection(), std::runtime_error);
}

TEST(CkptFailClearTest, ReadPastSectionEndThrows) {
  std::istringstream in(SampleCheckpoint());
  Reader r(in);
  r.BeginSection("beta");
  r.ReadU64();
  EXPECT_THROW(r.ReadU64(), std::runtime_error);
}

TEST(CkptFailClearTest, CorruptVectorLengthFailsBeforeAllocating) {
  std::ostringstream out;
  Writer w(out);
  w.BeginSection("v", 1);
  w.WriteU64(~0ULL);  // an absurd element count with no elements behind it
  w.EndSection();
  w.Finish();
  std::istringstream in(out.str());
  Reader r(in);
  r.BeginSection("v");
  EXPECT_THROW(r.ReadVecU64(), std::runtime_error);
}

TEST(CkptFailClearTest, WriterMisuseThrows) {
  std::ostringstream out;
  Writer w(out);
  EXPECT_THROW(w.WriteU8(1), std::runtime_error);  // no open section
  w.BeginSection("s", 1);
  EXPECT_THROW(w.BeginSection("t", 1), std::runtime_error);  // nested
  EXPECT_THROW(w.Finish(), std::runtime_error);  // inside open section
  w.EndSection();
  EXPECT_THROW(w.EndSection(), std::runtime_error);  // not open
  w.Finish();
  EXPECT_THROW(w.BeginSection("u", 1), std::runtime_error);  // after Finish
}

TEST(CkptFileTest, AtomicCommitPreservesPreviousCheckpointOnFailure) {
  const std::string path = ::testing::TempDir() + "/atlas_ckpt_atomic.ckpt";
  WriteCheckpointFile(path, [](Writer& w) {
    w.BeginSection("state", 1);
    w.WriteU64(1);
    w.EndSection();
  });
  // A save that dies mid-fill must leave the previous file intact and no
  // temp file behind.
  EXPECT_THROW(WriteCheckpointFile(path,
                                   [](Writer& w) {
                                     w.BeginSection("state", 1);
                                     w.WriteU64(2);
                                     throw std::runtime_error("boom");
                                   }),
               std::runtime_error);
  {
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good()) << "temp file left behind";
  }
  Reader r = ReadCheckpointFile(path);
  r.BeginSection("state", 1);
  EXPECT_EQ(r.ReadU64(), 1u);
  r.EndSection();
  std::remove(path.c_str());
}

TEST(CkptFileTest, MissingFileThrows) {
  EXPECT_THROW(ReadCheckpointFile(::testing::TempDir() + "/atlas_ckpt_nope"),
               std::runtime_error);
}

}  // namespace
}  // namespace atlas::ckpt
