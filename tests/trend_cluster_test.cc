#include "analysis/trend_cluster.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "analysis_fixtures.h"
#include "cdn/scenario.h"
#include "util/time.h"

namespace atlas::analysis {
namespace {

using testing::MakeRecord;
using testing::RecordSpec;
using util::kMillisPerHour;

// Builds a trace with `n` planted objects per archetype: diurnal objects
// request hourly all week modulated by hour-of-day; short-lived ones burst
// for a few hours.
trace::TraceBuffer PlantedTrace(int per_type, int requests_scale = 2) {
  trace::TraceBuffer buf;
  std::uint64_t url = 1;
  std::uint64_t user = 1000;
  // Diurnal: requests every hour, more at "night".
  for (int obj = 0; obj < per_type; ++obj, ++url) {
    for (int h = 0; h < util::kHoursPerWeek; ++h) {
      const int reps =
          1 + requests_scale * ((h % 24) < 8 ? 2 : 0);  // peak hours 0-7
      for (int r = 0; r < reps; ++r) {
        buf.Add(MakeRecord({.t = h * kMillisPerHour + r, .url = url,
                            .user = user++, .type = trace::FileType::kJpg}));
      }
    }
  }
  // Short-lived: a burst in the first 6 hours of day 0.
  for (int obj = 0; obj < per_type; ++obj, ++url) {
    for (int h = 0; h < 6; ++h) {
      for (int r = 0; r < 12 * requests_scale; ++r) {
        buf.Add(MakeRecord({.t = h * kMillisPerHour + r, .url = url,
                            .user = user++, .type = trace::FileType::kJpg}));
      }
    }
  }
  buf.SortByTime();
  return buf;
}

TEST(BuildObjectHourlySeriesTest, FiltersByClassAndThreshold) {
  trace::TraceBuffer buf;
  // 40 image requests for object 1, 5 for object 2, 40 video for object 3.
  for (int i = 0; i < 40; ++i) {
    buf.Add(MakeRecord({.t = i * kMillisPerHour, .url = 1,
                        .type = trace::FileType::kJpg}));
  }
  for (int i = 0; i < 5; ++i) {
    buf.Add(MakeRecord({.t = i, .url = 2, .type = trace::FileType::kJpg}));
  }
  for (int i = 0; i < 40; ++i) {
    buf.Add(MakeRecord({.t = i * kMillisPerHour, .url = 3,
                        .type = trace::FileType::kMp4}));
  }
  TrendClusterConfig config;
  config.min_requests = 30;
  config.content_class = trace::ContentClass::kImage;
  const auto series = BuildObjectHourlySeries(buf, config);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].first, 1u);
  EXPECT_EQ(series[0].second.size(),
            static_cast<std::size_t>(util::kHoursPerWeek));
}

TEST(BuildObjectHourlySeriesTest, SeriesAreSumNormalized) {
  trace::TraceBuffer buf;
  for (int i = 0; i < 50; ++i) {
    buf.Add(MakeRecord({.t = (i % 100) * kMillisPerHour, .url = 1,
                        .type = trace::FileType::kJpg}));
  }
  TrendClusterConfig config;
  config.content_class = trace::ContentClass::kImage;
  const auto series = BuildObjectHourlySeries(buf, config);
  ASSERT_EQ(series.size(), 1u);
  double total = 0;
  for (double v : series[0].second) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(BuildObjectHourlySeriesTest, MaxObjectsCap) {
  trace::TraceBuffer buf;
  for (std::uint64_t obj = 1; obj <= 20; ++obj) {
    for (int i = 0; i < 40; ++i) {
      buf.Add(MakeRecord({.t = i * kMillisPerHour, .url = obj,
                          .type = trace::FileType::kJpg}));
    }
  }
  TrendClusterConfig config;
  config.content_class = trace::ContentClass::kImage;
  config.max_objects = 7;
  EXPECT_EQ(BuildObjectHourlySeries(buf, config).size(), 7u);
}

TEST(ComputeTrendClustersTest, SeparatesPlantedArchetypes) {
  const auto buf = PlantedTrace(8);
  TrendClusterConfig config;
  config.content_class = trace::ContentClass::kImage;
  config.k = 2;
  config.min_requests = 30;
  const auto result = ComputeTrendClusters(buf, "X", config);
  ASSERT_EQ(result.clusters.size(), 2u);
  EXPECT_EQ(result.clustered_objects, 16u);
  // Two equal-size clusters, one per archetype.
  EXPECT_EQ(result.clusters[0].member_count, 8u);
  EXPECT_EQ(result.clusters[1].member_count, 8u);
  // Shapes: one diurnal, one short-lived.
  std::map<synth::PatternType, int> shapes;
  for (const auto& c : result.clusters) ++shapes[c.shape];
  EXPECT_EQ(shapes[synth::PatternType::kDiurnal], 1);
  EXPECT_EQ(shapes[synth::PatternType::kShortLived], 1);
  EXPECT_GT(result.silhouette, 0.5);
}

TEST(ComputeTrendClustersTest, MedoidSeriesWellFormed) {
  const auto buf = PlantedTrace(5);
  TrendClusterConfig config;
  config.content_class = trace::ContentClass::kImage;
  config.k = 2;
  const auto result = ComputeTrendClusters(buf, "X", config);
  for (const auto& c : result.clusters) {
    EXPECT_EQ(c.medoid_series.size(),
              static_cast<std::size_t>(util::kHoursPerWeek));
    EXPECT_EQ(c.pointwise_stddev.size(), c.medoid_series.size());
    double total = 0;
    for (double v : c.medoid_series) total += v;
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_NE(c.medoid_url_hash, 0u);
  }
  // Shares sum to 1 over clustered objects.
  double share = 0;
  for (const auto& c : result.clusters) share += c.share;
  EXPECT_NEAR(share, 1.0, 1e-9);
}

TEST(ComputeTrendClustersTest, TooFewObjectsDegradesGracefully) {
  trace::TraceBuffer buf;
  for (int i = 0; i < 40; ++i) {
    buf.Add(MakeRecord({.t = i * kMillisPerHour, .url = 1,
                        .type = trace::FileType::kJpg}));
  }
  TrendClusterConfig config;
  config.content_class = trace::ContentClass::kImage;
  const auto result = ComputeTrendClusters(buf, "X", config);
  EXPECT_EQ(result.clustered_objects, 1u);
  EXPECT_TRUE(result.clusters.empty());
}

TEST(ComputeTrendClustersTest, ShareOfSumsPatternShares) {
  const auto buf = PlantedTrace(6);
  TrendClusterConfig config;
  config.content_class = trace::ContentClass::kImage;
  config.k = 2;
  const auto result = ComputeTrendClusters(buf, "X", config);
  EXPECT_NEAR(result.ShareOf(synth::PatternType::kDiurnal) +
                  result.ShareOf(synth::PatternType::kShortLived) +
                  result.ShareOf(synth::PatternType::kLongLived) +
                  result.ShareOf(synth::PatternType::kFlashCrowd) +
                  result.ShareOf(synth::PatternType::kOutlier),
              1.0, 1e-9);
}

// Closed loop (Fig. 8): V-2's video clusters include both sustained
// (diurnal) and decaying (long-/short-lived) populations.
TEST(TrendClusterClosedLoopTest, V2VideoMixedTrends) {
  cdn::SimulatorConfig config;
  std::vector<synth::SiteProfile> profiles = {synth::SiteProfile::V2(0.04)};
  cdn::Scenario scenario(profiles, config, 11);
  TrendClusterConfig tc;
  tc.content_class = trace::ContentClass::kVideo;
  const auto result =
      ComputeTrendClusters(scenario.run(0).result.trace, "V-2", tc);
  ASSERT_GE(result.clustered_objects, 20u);
  // Member-level shares are robust at small scales where a single mixed
  // mega-cluster can swallow the plurality vote.
  const double sustained = result.MemberShareOf(synth::PatternType::kDiurnal);
  const double decaying =
      result.MemberShareOf(synth::PatternType::kLongLived) +
      result.MemberShareOf(synth::PatternType::kShortLived) +
      result.MemberShareOf(synth::PatternType::kFlashCrowd);
  EXPECT_GT(sustained, 0.05);
  EXPECT_GT(decaying, 0.15);
}

}  // namespace
}  // namespace atlas::analysis
