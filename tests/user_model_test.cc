#include "synth/user_model.h"

#include <gtest/gtest.h>

#include <set>

namespace atlas::synth {
namespace {

UserPopulation MakeUsers(const SiteProfile& profile, std::uint64_t seed = 1) {
  util::Rng rng(seed);
  return UserPopulation(profile, rng);
}

TEST(UserPopulationTest, SizeMatchesProfile) {
  const auto profile = SiteProfile::S1(0.05);
  EXPECT_EQ(MakeUsers(profile).size(), profile.num_users);
}

TEST(UserPopulationTest, UserIdsUnique) {
  const auto users = MakeUsers(SiteProfile::P1(0.05));
  std::set<std::uint64_t> ids;
  users.ForEachUser(
      [&](std::size_t, const UserInfo& u) { ids.insert(u.user_id); });
  EXPECT_EQ(ids.size(), users.size());
}

TEST(UserPopulationTest, DeviceSharesMatchProfile) {
  const auto profile = SiteProfile::S1(0.5);  // 30000 users
  const auto users = MakeUsers(profile);
  const auto shares = users.DeviceShares();
  for (int d = 0; d < trace::kNumDeviceTypes; ++d) {
    EXPECT_NEAR(shares[static_cast<std::size_t>(d)],
                profile.device_mix[static_cast<std::size_t>(d)], 0.02);
  }
}

TEST(UserPopulationTest, UaStringsMatchAssignedDevice) {
  const auto users = MakeUsers(SiteProfile::S1(0.02));
  const auto& bank = trace::UaBank::Instance();
  users.ForEachUser([&](std::size_t, const UserInfo& u) {
    EXPECT_EQ(trace::ParseUserAgent(bank.String(u.user_agent_id)).device,
              u.device);
  });
}

TEST(UserPopulationTest, TimezonesConsistentWithContinent) {
  const auto users = MakeUsers(SiteProfile::V1(0.02));
  users.ForEachUser([](std::size_t, const UserInfo& u) {
    const double h = u.tz_offset_quarter_hours / 4.0;
    switch (u.continent) {
      case Continent::kNorthAmerica:
        EXPECT_GE(h, -8.0);
        EXPECT_LE(h, -5.0);
        break;
      case Continent::kEurope:
        EXPECT_GE(h, 0.0);
        EXPECT_LE(h, 3.0);
        break;
      case Continent::kAsia:
        EXPECT_GE(h, 5.5);
        EXPECT_LE(h, 9.0);
        break;
      case Continent::kSouthAmerica:
        EXPECT_GE(h, -5.0);
        EXPECT_LE(h, -3.0);
        break;
    }
  });
}

TEST(UserPopulationTest, IncognitoRateRespected) {
  SiteProfile profile = SiteProfile::V1(0.2);
  profile.incognito_rate = 0.75;
  const auto users = MakeUsers(profile);
  double incognito = 0;
  users.ForEachUser([&](std::size_t, const UserInfo& u) {
    incognito += u.incognito ? 1 : 0;
  });
  EXPECT_NEAR(incognito / static_cast<double>(users.size()), 0.75, 0.02);
}

TEST(UserPopulationTest, ActivityIsHeavyTailed) {
  const auto users = MakeUsers(SiteProfile::V1(0.1));
  double max_activity = 0, sum = 0;
  users.ForEachUser([&](std::size_t, const UserInfo& u) {
    EXPECT_GE(u.activity, 1.0);  // Pareto scale 1
    max_activity = std::max(max_activity, u.activity);
    sum += u.activity;
  });
  // The heaviest user dwarfs the mean.
  EXPECT_GT(max_activity, 10.0 * sum / static_cast<double>(users.size()));
}

TEST(UserPopulationTest, SampleUserWeightedByActivity) {
  SiteProfile profile = SiteProfile::V1(0.01);
  const auto users = MakeUsers(profile, 3);
  util::Rng rng(5);
  std::vector<int> counts(users.size(), 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[users.SampleUser(rng)];
  // Find the most active user; they must be sampled most often.
  std::size_t heaviest = 0;
  for (std::size_t i = 0; i < users.size(); ++i) {
    if (users.user(i).activity > users.user(heaviest).activity) heaviest = i;
  }
  for (std::size_t i = 0; i < users.size(); ++i) {
    EXPECT_LE(counts[i], counts[heaviest] + 600);
  }
}

TEST(ContinentTest, FromTzRoundTrip) {
  // Every generated user's tz maps back to their continent.
  const auto users = MakeUsers(SiteProfile::P2(0.05), 7);
  users.ForEachUser([](std::size_t, const UserInfo& u) {
    EXPECT_EQ(ContinentFromTzQuarterHours(u.tz_offset_quarter_hours),
              u.continent)
        << "offset " << static_cast<int>(u.tz_offset_quarter_hours);
  });
}

TEST(ContinentTest, Names) {
  EXPECT_STREQ(ToString(Continent::kAsia), "Asia");
  EXPECT_STREQ(ToString(Continent::kSouthAmerica), "South America");
}

}  // namespace
}  // namespace atlas::synth
