#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "util/rng.h"

namespace atlas::trace {
namespace {

TraceBuffer MakeSampleTrace(std::size_t n) {
  util::Rng rng(17);
  TraceBuffer buf;
  for (std::size_t i = 0; i < n; ++i) {
    LogRecord r;
    r.timestamp_ms = static_cast<std::int64_t>(rng.NextBounded(1000000));
    r.url_hash = rng.Next();
    r.user_id = rng.Next();
    r.object_size = rng.NextBounded(1 << 30);
    r.response_bytes = rng.NextBounded(r.object_size + 1);
    r.publisher_id = static_cast<std::uint32_t>(rng.NextBounded(6));
    r.user_agent_id = static_cast<std::uint16_t>(rng.NextBounded(20));
    r.response_code = rng.NextBool(0.9) ? 200 : 304;
    r.file_type = static_cast<FileType>(rng.NextBounded(kNumFileTypes));
    r.cache_status =
        rng.NextBool(0.8) ? CacheStatus::kHit : CacheStatus::kMiss;
    r.tz_offset_quarter_hours =
        static_cast<std::int8_t>(rng.NextInt(-32, 36));
    buf.Add(r);
  }
  return buf;
}

TEST(BinaryIoTest, RoundTripPreservesEveryField) {
  const TraceBuffer original = MakeSampleTrace(500);
  std::stringstream stream;
  WriteBinary(original, stream);
  const TraceBuffer loaded = ReadBinary(stream);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i], original[i]) << "record " << i;
  }
}

TEST(BinaryIoTest, EmptyTrace) {
  std::stringstream stream;
  WriteBinary(TraceBuffer{}, stream);
  EXPECT_EQ(ReadBinary(stream).size(), 0u);
}

TEST(BinaryIoTest, BadMagicRejected) {
  std::stringstream stream("NOPE00000000");
  EXPECT_THROW(ReadBinary(stream), std::runtime_error);
}

TEST(BinaryIoTest, TruncatedInputRejected) {
  const TraceBuffer original = MakeSampleTrace(10);
  std::stringstream stream;
  WriteBinary(original, stream);
  std::string data = stream.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(ReadBinary(truncated), std::runtime_error);
}

TEST(BinaryIoTest, VersionMismatchRejected) {
  std::stringstream stream;
  WriteBinary(TraceBuffer{}, stream);
  std::string data = stream.str();
  data[4] = 99;  // clobber version byte
  std::stringstream bad(data);
  EXPECT_THROW(ReadBinary(bad), std::runtime_error);
}

TEST(BinaryIoTest, FileRoundTrip) {
  const TraceBuffer original = MakeSampleTrace(50);
  const std::string path = ::testing::TempDir() + "/atlas_trace_test.bin";
  WriteBinaryFile(original, path);
  const TraceBuffer loaded = ReadBinaryFile(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded[17], original[17]);
}

TEST(BinaryIoTest, MissingFileThrows) {
  EXPECT_THROW(ReadBinaryFile("/nonexistent/path/x.bin"), std::runtime_error);
}

TEST(CsvIoTest, RoundTrip) {
  const TraceBuffer original = MakeSampleTrace(100);
  std::stringstream stream;
  WriteCsv(original, stream);
  const TraceBuffer loaded = ReadCsv(stream);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i], original[i]) << "record " << i;
  }
}

TEST(CsvIoTest, HeaderPresent) {
  std::stringstream stream;
  WriteCsv(MakeSampleTrace(1), stream);
  std::string header;
  std::getline(stream, header);
  EXPECT_NE(header.find("timestamp_ms"), std::string::npos);
  EXPECT_NE(header.find("cache_status"), std::string::npos);
}

TEST(CsvIoTest, BadFieldCountRejected) {
  std::stringstream stream("h1,h2\n1,2\n");
  EXPECT_THROW(ReadCsv(stream), std::runtime_error);
}

// Property test: randomized records exercising the schema's corners — every
// response code the paper reports (200/204/206/304/403/416, including the
// anomaly-produced 204/403/416 with zero response bytes), zero-byte objects,
// and objects past 4 GiB (sizes must not be squeezed through 32 bits
// anywhere) — survive binary -> CSV -> binary unchanged, and the two binary
// serializations are byte-identical.
TEST(RoundTripPropertyTest, BinaryCsvBinaryPreservesRandomizedRecords) {
  util::Rng rng(20260806);
  const std::uint16_t kCodes[] = {200, 204, 206, 304, 403, 416};

  TraceBuffer original;
  for (std::size_t i = 0; i < 2000; ++i) {
    LogRecord r;
    r.timestamp_ms = rng.NextInt(0, 7LL * 24 * 3600 * 1000);
    r.url_hash = rng.Next();
    r.user_id = rng.Next();
    switch (rng.NextBounded(4)) {
      case 0:  // zero-byte object (beacons, empty placeholders)
        r.object_size = 0;
        break;
      case 1:  // > 4 GiB: must round-trip through 64-bit fields intact
        r.object_size = (4ULL << 30) + rng.NextBounded(1ULL << 40);
        break;
      default:
        r.object_size = rng.NextBounded(1ULL << 30);
        break;
    }
    r.response_code = kCodes[rng.NextBounded(std::size(kCodes))];
    switch (r.response_code) {
      case kHttpNoContent:          // beacon (Anomaly::kBeacon)
      case kHttpNotModified:
      case kHttpForbidden:          // hotlink (Anomaly::kHotlink)
      case kHttpRangeNotSatisfiable:  // bad range (Anomaly::kBadRange)
        r.response_bytes = 0;
        break;
      default:
        r.response_bytes = rng.NextBounded(r.object_size + 1);
        break;
    }
    r.publisher_id = static_cast<std::uint32_t>(rng.Next());
    r.user_agent_id = static_cast<std::uint16_t>(rng.NextBounded(1 << 16));
    r.file_type = static_cast<FileType>(rng.NextBounded(kNumFileTypes));
    r.cache_status =
        rng.NextBool(0.5) ? CacheStatus::kHit : CacheStatus::kMiss;
    r.tz_offset_quarter_hours = static_cast<std::int8_t>(rng.NextInt(-56, 56));
    original.Add(r);
  }

  // binary -> buffer
  std::stringstream bin1;
  WriteBinary(original, bin1);
  const TraceBuffer from_binary = ReadBinary(bin1);
  ASSERT_EQ(from_binary.size(), original.size());

  // -> CSV -> buffer
  std::stringstream csv;
  WriteCsv(from_binary, csv);
  const TraceBuffer from_csv = ReadCsv(csv);
  ASSERT_EQ(from_csv.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(from_csv[i], original[i]) << "record " << i;
  }

  // -> binary again: byte-identical to the first serialization.
  std::stringstream bin2;
  WriteBinary(from_csv, bin2);
  EXPECT_EQ(bin1.str(), bin2.str());
}

TEST(BinaryIoTest, HugeDeclaredCountFailsCleanlyNotOom) {
  // Regression: a corrupt header declaring ~2^60 records used to drive
  // Reserve() straight off that number. The count is attacker-controlled
  // until records actually parse; the prealloc must be clamped and the
  // (immediate) truncation reported as the ordinary parse error.
  std::stringstream stream;
  WriteBinary(MakeSampleTrace(3), stream);
  std::string data = stream.str();
  const std::uint64_t huge = 1ULL << 60;
  for (int i = 0; i < 8; ++i) {
    data[8 + i] = static_cast<char>((huge >> (8 * i)) & 0xFF);
  }
  std::stringstream bad(data);
  EXPECT_THROW(ReadBinary(bad), std::runtime_error);  // not std::bad_alloc
}

TEST(BinaryIoTest, NegativeTimestampRejected) {
  // The wire format stores timestamp_ms as two's complement; a negative
  // value can only come from corruption and every consumer assumes
  // non-negative clocks.
  TraceBuffer buf = MakeSampleTrace(2);
  buf.mutable_records()[1].timestamp_ms = -5;
  std::stringstream stream;
  WriteBinary(buf, stream);
  EXPECT_THROW(ReadBinary(stream), std::runtime_error);
}

TEST(CsvIoTest, NegativeTimestampRejected) {
  TraceBuffer buf = MakeSampleTrace(1);
  std::stringstream stream;
  WriteCsv(buf, stream);
  std::string text = stream.str();
  const auto row = text.find('\n') + 1;
  text.insert(row, "-");  // timestamp_ms is the first field
  std::stringstream bad(text);
  EXPECT_THROW(ReadCsv(bad), std::runtime_error);
}

TEST(CsvIoTest, ClassMismatchRejected) {
  // Build a valid row, then claim an mp4 is an image.
  TraceBuffer buf = MakeSampleTrace(1);
  buf.mutable_records()[0].file_type = FileType::kMp4;
  std::stringstream stream;
  WriteCsv(buf, stream);
  std::string text = stream.str();
  const auto pos = text.find(",video,");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 7, ",image,");
  std::stringstream bad(text);
  EXPECT_THROW(ReadCsv(bad), std::runtime_error);
}

// Serializes one sample record to CSV, then replaces the data row's
// `field_index`-th column with `value`. No field contains an embedded comma,
// so a plain split is exact.
std::string CsvWithField(std::size_t field_index, const std::string& value) {
  std::stringstream stream;
  WriteCsv(MakeSampleTrace(1), stream);
  const std::string text = stream.str();
  const auto row_begin = text.find('\n') + 1;
  std::string row = text.substr(row_begin);
  if (!row.empty() && row.back() == '\n') row.pop_back();
  std::vector<std::string> fields;
  std::stringstream ss(row);
  std::string field;
  while (std::getline(ss, field, ',')) fields.push_back(field);
  fields.at(field_index) = value;
  std::string out = text.substr(0, row_begin);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    out += fields[i];
    out += i + 1 < fields.size() ? "," : "\n";
  }
  return out;
}

// Regression: narrow record columns used to be filled with a bare
// static_cast, so a publisher_id of 2^32 silently became publisher 0 and
// all its traffic was misattributed. Out-of-range values must be rejected.
TEST(CsvIoTest, PublisherIdOverflowRejected) {
  std::stringstream bad(CsvWithField(5, "4294967296"));  // 2^32
  EXPECT_THROW(ReadCsv(bad), std::runtime_error);
}

TEST(CsvIoTest, UserAgentIdOverflowRejected) {
  std::stringstream bad(CsvWithField(6, "65536"));  // 2^16
  EXPECT_THROW(ReadCsv(bad), std::runtime_error);
}

TEST(CsvIoTest, ResponseCodeOverflowRejected) {
  std::stringstream bad(CsvWithField(7, "70000"));
  EXPECT_THROW(ReadCsv(bad), std::runtime_error);
}

TEST(CsvIoTest, TzOffsetOverflowRejected) {
  std::stringstream high(CsvWithField(11, "128"));
  EXPECT_THROW(ReadCsv(high), std::runtime_error);
  std::stringstream low(CsvWithField(11, "-129"));
  EXPECT_THROW(ReadCsv(low), std::runtime_error);
}

TEST(CsvIoTest, NarrowFieldBoundaryValuesAccepted) {
  // The validation must not over-reject: the exact type maxima are legal.
  std::stringstream max_pub(CsvWithField(5, "4294967295"));
  EXPECT_EQ(ReadCsv(max_pub)[0].publisher_id, 4294967295u);
  std::stringstream min_tz(CsvWithField(11, "-128"));
  EXPECT_EQ(ReadCsv(min_tz)[0].tz_offset_quarter_hours, -128);
}

// Accepts `capacity` bytes, then fails every write — a disk that fills up
// mid-stream. An ofstream over a full disk behaves exactly like this: the
// writer sees no error until a flush, and a destructor-driven flush swallows
// it entirely. The writers must flush and check before reporting success.
class FullDiskBuf : public std::streambuf {
 public:
  explicit FullDiskBuf(std::size_t capacity) : capacity_(capacity) {}

 protected:
  int overflow(int ch) override {
    if (written_ >= capacity_) return traits_type::eof();
    ++written_;
    return ch;
  }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    if (written_ + static_cast<std::size_t>(n) > capacity_) {
      // Short write: only part of the buffer fits.
      const auto fit = capacity_ - written_;
      written_ = capacity_;
      return static_cast<std::streamsize>(fit);
    }
    written_ += static_cast<std::size_t>(n);
    return n;
  }

 private:
  std::size_t capacity_;
  std::size_t written_ = 0;
};

TEST(FailingStreamTest, WriteBinarySurfacesShortWrite) {
  const TraceBuffer trace = MakeSampleTrace(100);
  FullDiskBuf buf(64);  // header fits, records don't
  std::ostream out(&buf);
  EXPECT_THROW(WriteBinary(trace, out), std::runtime_error);
}

TEST(FailingStreamTest, WriteCsvSurfacesShortWrite) {
  const TraceBuffer trace = MakeSampleTrace(100);
  FullDiskBuf buf(256);
  std::ostream out(&buf);
  EXPECT_THROW(WriteCsv(trace, out), std::runtime_error);
}

TEST(FailingStreamTest, WriteBinaryToHealthySinkStillSucceeds) {
  // The failure check must not reject a sink that merely buffers lazily.
  const TraceBuffer trace = MakeSampleTrace(10);
  std::ostringstream out;
  EXPECT_NO_THROW(WriteBinary(trace, out));
}

}  // namespace
}  // namespace atlas::trace
