#include "cluster/medoid.h"

#include <gtest/gtest.h>

#include <cmath>

namespace atlas::cluster {
namespace {

DistanceMatrix FromPoints(const std::vector<double>& pts) {
  DistanceMatrix m(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      m.Set(i, j, std::abs(pts[i] - pts[j]));
    }
  }
  return m;
}

TEST(MedoidIndexTest, CentralPointWins) {
  // Points 0, 5, 6, 7, 20: medoid is 6 (index 2).
  const auto m = FromPoints({0, 5, 6, 7, 20});
  const std::vector<std::size_t> all = {0, 1, 2, 3, 4};
  EXPECT_EQ(MedoidIndex(m, all), 2u);
}

TEST(MedoidIndexTest, SubsetOnly) {
  const auto m = FromPoints({0, 5, 6, 7, 20});
  // Within {0, 4} (points 0 and 20) either is optimal; first wins ties.
  const std::vector<std::size_t> pair = {0, 4};
  EXPECT_EQ(MedoidIndex(m, pair), 0u);
}

TEST(MedoidIndexTest, SingletonIsItself) {
  const auto m = FromPoints({1, 2, 3});
  EXPECT_EQ(MedoidIndex(m, {1}), 0u);
}

TEST(MedoidIndexTest, EmptyThrows) {
  const auto m = FromPoints({1, 2});
  EXPECT_THROW(MedoidIndex(m, {}), std::invalid_argument);
}

TEST(SummarizeClustersTest, MedoidAndSpread) {
  const std::vector<std::vector<double>> series = {
      {0.0, 1.0}, {0.0, 1.2}, {0.0, 0.8},  // cluster 0 around {0, 1}
      {5.0, 5.0}, {5.0, 5.0},              // cluster 1: identical members
  };
  DistanceMatrix m(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    for (std::size_t j = i + 1; j < series.size(); ++j) {
      double d = 0;
      for (std::size_t t = 0; t < 2; ++t) d += std::abs(series[i][t] - series[j][t]);
      m.Set(i, j, d);
    }
  }
  const std::vector<std::size_t> labels = {0, 0, 0, 1, 1};
  const auto summaries = SummarizeClusters(m, series, labels);
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].member_count, 3u);
  EXPECT_EQ(summaries[0].medoid_item, 0u);  // {0,1} is central
  // sigma at t=0 is 0; at t=1 it is sqrt(mean of squared devs from mean 1.0).
  EXPECT_NEAR(summaries[0].pointwise_stddev[0], 0.0, 1e-12);
  EXPECT_NEAR(summaries[0].pointwise_stddev[1],
              std::sqrt((0.0 + 0.04 + 0.04) / 3.0), 1e-12);
  // Identical members: zero spread.
  EXPECT_NEAR(summaries[1].pointwise_stddev[0], 0.0, 1e-12);
  EXPECT_NEAR(summaries[1].pointwise_stddev[1], 0.0, 1e-12);
}

TEST(SummarizeClustersTest, SizeMismatchThrows) {
  DistanceMatrix m(3);
  const std::vector<std::vector<double>> series = {{1.0}, {2.0}};
  EXPECT_THROW(SummarizeClusters(m, series, {0, 0}), std::invalid_argument);
}

TEST(SparklineTest, WidthAndPeak) {
  const auto line = Sparkline({0, 0, 1, 0, 0}, 5);
  EXPECT_EQ(line.size(), 5u);
  EXPECT_EQ(line[2], '#');
  EXPECT_EQ(line[0], ' ');
}

TEST(SparklineTest, DownsamplesLongSeries) {
  std::vector<double> series(100, 0.0);
  series[50] = 1.0;
  const auto line = Sparkline(series, 10);
  EXPECT_EQ(line.size(), 10u);
}

TEST(SparklineTest, EmptyAndFlat) {
  EXPECT_EQ(Sparkline({}, 10), "");
  EXPECT_EQ(Sparkline({0, 0, 0}, 3), "   ");
}

}  // namespace
}  // namespace atlas::cluster
