#include "analysis/claims.h"

#include <gtest/gtest.h>

#include <sstream>

#include "cdn/scenario.h"
#include "scenario_fixtures.h"
#include "util/logging.h"

namespace atlas::analysis {
namespace {

TEST(ClaimsTest, AllClaimsPassOnDefaultStudy) {
  util::SetLogLevel(util::LogLevel::kWarn);
  cdn::SimulatorConfig config;
  config.topology.edge_capacity_bytes = 1ULL << 30;
  const auto scenario = cdn::Scenario::PaperStudy(0.01, config, 42);
  SuiteConfig suite_config;
  suite_config.run_trend_clusters = false;
  const AnalysisSuite suite(testutil::MaterializeMerged(scenario),
                            scenario.registry(), suite_config);
  const auto claims = VerifyPaperClaims(suite);
  EXPECT_GT(claims.size(), 25u);
  for (const auto& c : claims) {
    EXPECT_TRUE(c.pass) << c.id << ": " << c.description << " (" << c.detail
                        << ")";
  }
  util::SetLogLevel(util::LogLevel::kInfo);
}

TEST(ClaimsTest, MissingSitesFailGracefully) {
  // A registry with only one site: the verifier reports a setup failure
  // instead of crashing.
  trace::PublisherRegistry registry;
  registry.Register("V-1", trace::SiteKind::kAdultVideo);
  trace::TraceBuffer empty;
  trace::LogRecord r;
  r.publisher_id = 0;
  empty.Add(r);
  SuiteConfig suite_config;
  suite_config.run_trend_clusters = false;
  const AnalysisSuite suite(empty, registry, suite_config);
  const auto claims = VerifyPaperClaims(suite);
  ASSERT_EQ(claims.size(), 1u);
  EXPECT_FALSE(claims[0].pass);
  EXPECT_EQ(claims[0].id, "setup");
}

TEST(ClaimsTest, RenderCountsFailures) {
  std::vector<ClaimResult> claims = {
      {"a", "first", true, "ok"},
      {"b", "second", false, "bad"},
      {"c", "third", true, ""},
  };
  std::ostringstream out;
  EXPECT_EQ(RenderClaims(claims, out), 1);
  EXPECT_NE(out.str().find("[PASS] a"), std::string::npos);
  EXPECT_NE(out.str().find("[FAIL] b"), std::string::npos);
  EXPECT_NE(out.str().find("2/3 claims reproduced"), std::string::npos);
  EXPECT_NE(out.str().find("1 FAILED"), std::string::npos);
}

}  // namespace
}  // namespace atlas::analysis
