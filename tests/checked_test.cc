#include "util/checked.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace atlas::util {
namespace {

TEST(CheckedIndexU32Test, PassesThroughTheFullRange) {
  EXPECT_EQ(CheckedIndexU32(0, "test"), 0u);
  EXPECT_EQ(CheckedIndexU32(12345, "test"), 12345u);
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint32_t>::max();
  EXPECT_EQ(CheckedIndexU32(kMax, "test"), kMax);
}

TEST(CheckedIndexU32Test, ThrowsLoudlyPastTheRange) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint32_t>::max();
  EXPECT_THROW(CheckedIndexU32(kMax + 1, "object"), std::overflow_error);
  EXPECT_THROW(CheckedIndexU32(std::numeric_limits<std::uint64_t>::max(),
                               "user"),
               std::overflow_error);
  // The message names the index kind, so an overflow is actionable.
  try {
    CheckedIndexU32(kMax + 1, "object");
    FAIL() << "expected std::overflow_error";
  } catch (const std::overflow_error& e) {
    EXPECT_NE(std::string(e.what()).find("object"), std::string::npos);
  }
}

}  // namespace
}  // namespace atlas::util
