// Unit tests for synth::ShardStore: the two storage modes must be
// observationally identical, the lazy replay must be draw-for-draw exact,
// and concurrent Get() must be safe (this file runs under the sanitize
// label's TSan build via scale_test).
#include "synth/shard_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace atlas::synth {
namespace {

// A table whose records are raw RNG draws: any replay misalignment (a
// missed snapshot, an off-by-one shard boundary, a stray draw) changes
// every subsequent value.
struct Record {
  std::uint64_t value = 0;
  double gaussian = 0.0;
};

Record GenerateRecord(util::Rng& rng) {
  Record r;
  r.value = rng.Next();
  // NextGaussian caches its Box-Muller pair, so the snapshot must carry
  // the cached variate for replay to stay aligned.
  r.gaussian = rng.NextGaussian();
  return r;
}

// Builds a store over `total` records; `budget_bytes` selects the mode.
void Build(ShardStore<Record>& store, std::size_t total,
           std::size_t shard_items, std::uint64_t budget_bytes,
           std::uint64_t seed, std::vector<Record>* expect = nullptr) {
  util::Rng rng(seed);
  store.BeginBuild(total, shard_items, budget_bytes);
  for (std::size_t i = 0; i < total; ++i) {
    store.BeforeItem(i, rng);
    const Record r = GenerateRecord(rng);
    store.Append(r);
    if (expect != nullptr) expect->push_back(r);
  }
  store.EndBuild([&store](std::size_t shard, util::Rng& replay_rng,
                          std::vector<Record>& out) {
    const std::size_t count =
        store.ShardEnd(shard) - store.ShardBegin(shard);
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(GenerateRecord(replay_rng));
    }
  });
}

TEST(ShardStoreTest, ResidentModeKeepsEverything) {
  ShardStore<Record> store;
  std::vector<Record> expect;
  Build(store, 1000, 64, /*budget_bytes=*/1u << 20, 42, &expect);
  EXPECT_FALSE(store.lazy());
  EXPECT_EQ(store.size(), 1000u);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(store.Get(i).value, expect[i].value);
  }
  EXPECT_EQ(store.materializations(), 0u);
}

TEST(ShardStoreTest, LazyReplayIsDrawForDrawExact) {
  ShardStore<Record> store;
  std::vector<Record> expect;
  // 1000 records * 16 B >> 256 B: lazy, with a tiny two-shard cache.
  Build(store, 1000, 64, /*budget_bytes=*/256, 42, &expect);
  ASSERT_TRUE(store.lazy());
  EXPECT_EQ(store.shard_count(), (1000u + 63) / 64);
  EXPECT_EQ(store.max_cached_shards(), 2u);

  // Random access across all shards (forces evictions).
  util::Rng access(7);
  for (int i = 0; i < 4000; ++i) {
    const std::size_t idx = access.NextBounded(store.size());
    const Record got = store.Get(idx);
    ASSERT_EQ(got.value, expect[idx].value) << idx;
    ASSERT_EQ(got.gaussian, expect[idx].gaussian) << idx;
    ASSERT_LE(store.cached_shards(), store.max_cached_shards());
  }
  EXPECT_GT(store.materializations(), store.shard_count());

  // ForEach streams in index order without disturbing the cache contract.
  std::size_t next = 0;
  store.ForEach([&](std::size_t i, const Record& r) {
    ASSERT_EQ(i, next++);
    ASSERT_EQ(r.value, expect[i].value);
  });
  EXPECT_EQ(next, expect.size());
}

TEST(ShardStoreTest, LazyAndResidentAgreeFromTheSameSeed) {
  ShardStore<Record> resident, lazy;
  Build(resident, 500, 32, 1u << 20, 99);
  Build(lazy, 500, 32, 128, 99);
  ASSERT_FALSE(resident.lazy());
  ASSERT_TRUE(lazy.lazy());
  for (std::size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(resident.Get(i).value, lazy.Get(i).value) << i;
    EXPECT_EQ(resident.Get(i).gaussian, lazy.Get(i).gaussian) << i;
  }
}

TEST(ShardStoreTest, ShardBoundsPartitionTheTable) {
  ShardStore<Record> store;
  Build(store, 130, 64, 128, 1);
  ASSERT_TRUE(store.lazy());
  ASSERT_EQ(store.shard_count(), 3u);
  EXPECT_EQ(store.ShardBegin(0), 0u);
  EXPECT_EQ(store.ShardEnd(0), 64u);
  EXPECT_EQ(store.ShardBegin(2), 128u);
  EXPECT_EQ(store.ShardEnd(2), 130u);  // short tail shard
}

TEST(ShardStoreTest, ConcurrentLazyGetsAreConsistent) {
  ShardStore<Record> store;
  std::vector<Record> expect;
  Build(store, 2000, 64, 256, 23, &expect);
  ASSERT_TRUE(store.lazy());

  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&store, &expect, w] {
      util::Rng access(100 + static_cast<std::uint64_t>(w));
      for (int i = 0; i < 2000; ++i) {
        const std::size_t idx = access.NextBounded(store.size());
        const Record got = store.Get(idx);
        ASSERT_EQ(got.value, expect[idx].value);
      }
    });
  }
  for (auto& t : workers) t.join();
}

}  // namespace
}  // namespace atlas::synth
