#include "analysis/caching.h"

#include <gtest/gtest.h>

#include "analysis_fixtures.h"
#include "cdn/simulator.h"

namespace atlas::analysis {
namespace {

using testing::MakeRecord;
using testing::RecordSpec;
using trace::CacheStatus;

TEST(CachingTest, PerObjectHitRatios) {
  trace::TraceBuffer buf;
  // Object 1 (image): 3 hits, 1 miss -> 0.75.
  for (int i = 0; i < 3; ++i) {
    buf.Add(MakeRecord({.t = i, .url = 1, .cache = CacheStatus::kHit}));
  }
  buf.Add(MakeRecord({.t = 4, .url = 1, .cache = CacheStatus::kMiss}));
  // Object 2 (video): all misses -> 0.0.
  for (int i = 0; i < 2; ++i) {
    buf.Add(MakeRecord({.t = 10 + i, .url = 2, .type = trace::FileType::kMp4,
                        .code = trace::kHttpPartialContent,
                        .cache = CacheStatus::kMiss}));
  }
  const auto result = ComputeCaching(buf, "X");
  EXPECT_EQ(result.image_hit_ratio.count(), 1u);
  EXPECT_DOUBLE_EQ(result.image_hit_ratio.Median(), 0.75);
  EXPECT_EQ(result.video_hit_ratio.count(), 1u);
  EXPECT_DOUBLE_EQ(result.video_hit_ratio.Median(), 0.0);
  EXPECT_DOUBLE_EQ(result.overall_hit_ratio, 0.5);
  EXPECT_DOUBLE_EQ(result.image_overall_hit_ratio, 0.75);
  EXPECT_DOUBLE_EQ(result.video_overall_hit_ratio, 0.0);
}

TEST(CachingTest, ErrorsExcludedFromHitAccounting) {
  trace::TraceBuffer buf;
  buf.Add(MakeRecord({.t = 0, .url = 1, .cache = CacheStatus::kHit}));
  buf.Add(MakeRecord({.t = 1, .url = 1, .code = trace::kHttpForbidden,
                      .cache = CacheStatus::kMiss}));
  buf.Add(MakeRecord({.t = 2, .url = 1, .code = trace::kHttpRangeNotSatisfiable,
                      .cache = CacheStatus::kMiss}));
  const auto result = ComputeCaching(buf, "X");
  EXPECT_DOUBLE_EQ(result.overall_hit_ratio, 1.0);
  // But the error codes still show up in Fig. 16 counts.
  EXPECT_EQ(result.all_response_codes.at(trace::kHttpForbidden), 1u);
  EXPECT_EQ(result.all_response_codes.at(trace::kHttpRangeNotSatisfiable), 1u);
}

TEST(CachingTest, ResponseCodePanelsSplitByClass) {
  trace::TraceBuffer buf;
  buf.Add(MakeRecord({.t = 0, .url = 1, .type = trace::FileType::kMp4,
                      .code = trace::kHttpPartialContent}));
  buf.Add(MakeRecord({.t = 1, .url = 2, .type = trace::FileType::kJpg,
                      .code = trace::kHttpNotModified}));
  const auto result = ComputeCaching(buf, "X");
  EXPECT_EQ(result.video_response_codes.at(trace::kHttpPartialContent), 1u);
  EXPECT_EQ(result.video_response_codes.count(trace::kHttpNotModified), 0u);
  EXPECT_EQ(result.image_response_codes.at(trace::kHttpNotModified), 1u);
}

TEST(CachingTest, NotModifiedShare) {
  trace::TraceBuffer buf;
  buf.Add(MakeRecord({.t = 0, .url = 1, .code = trace::kHttpOk}));
  buf.Add(MakeRecord({.t = 1, .url = 1, .code = trace::kHttpNotModified}));
  buf.Add(MakeRecord({.t = 2, .url = 1, .code = trace::kHttpOk}));
  buf.Add(MakeRecord({.t = 3, .url = 1, .code = trace::kHttpOk}));
  const auto result = ComputeCaching(buf, "X");
  EXPECT_DOUBLE_EQ(result.NotModifiedShare(), 0.25);
}

TEST(CachingTest, PopularityCorrelation) {
  trace::TraceBuffer buf;
  // Popular object: 20 requests, 19 hits. Unpopular: 2 requests, 0 hits.
  for (int i = 0; i < 20; ++i) {
    buf.Add(MakeRecord({.t = i, .url = 1,
                        .cache = i == 0 ? CacheStatus::kMiss
                                        : CacheStatus::kHit}));
  }
  for (int i = 0; i < 2; ++i) {
    buf.Add(MakeRecord({.t = 100 + i, .url = 2, .cache = CacheStatus::kMiss}));
  }
  const auto result = ComputeCaching(buf, "X");
  EXPECT_GT(result.popularity_hit_correlation, 0.99);
}

TEST(CachingTest, EmptyTraceSafe) {
  const auto result = ComputeCaching(trace::TraceBuffer{}, "E");
  EXPECT_DOUBLE_EQ(result.overall_hit_ratio, 0.0);
  EXPECT_DOUBLE_EQ(result.NotModifiedShare(), 0.0);
}

// Closed loop (Figs. 15-16 / §V).
TEST(CachingClosedLoopTest, PaperShapeHolds) {
  cdn::SimulatorConfig config;
  config.topology.edge_capacity_bytes = 2ULL << 30;
  const auto sim = cdn::SimulateSite(synth::SiteProfile::V2(0.03), 0, config, 7);
  const auto result = ComputeCaching(sim.trace, "V-2");
  // Popular objects cache better: strong positive correlation (paper: >0.9).
  EXPECT_GT(result.popularity_hit_correlation, 0.5);
  // Aggregate hit ratio in a healthy band.
  EXPECT_GT(result.overall_hit_ratio, 0.5);
  // 304s are rare for adult sites (incognito browsing, §V).
  EXPECT_LT(result.NotModifiedShare(), 0.05);
  // Images cache at least as well as video chunks.
  EXPECT_GE(result.image_overall_hit_ratio, result.video_overall_hit_ratio - 0.1);
}

}  // namespace
}  // namespace atlas::analysis
