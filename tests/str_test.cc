#include "util/str.h"

#include <gtest/gtest.h>

namespace atlas::util {
namespace {

TEST(SplitTest, Basic) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, PreservesEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, EmptyInput) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, Whitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(ToLowerTest, MixedCase) {
  EXPECT_EQ(ToLower("MoZiLLa/5.0"), "mozilla/5.0");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
  EXPECT_TRUE(EndsWith("clip.mp4", ".mp4"));
  EXPECT_FALSE(EndsWith("mp4", ".mp4"));
}

TEST(ContainsIgnoreCaseTest, Matches) {
  EXPECT_TRUE(ContainsIgnoreCase("Mozilla/5.0 (iPhone; ...)", "iphone"));
  EXPECT_TRUE(ContainsIgnoreCase("abc", ""));
  EXPECT_FALSE(ContainsIgnoreCase("ab", "abc"));
  EXPECT_FALSE(ContainsIgnoreCase("Mozilla", "android"));
}

TEST(FormatBytesTest, Units) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KB");
  EXPECT_EQ(FormatBytes(1048576), "1.0 MB");
  EXPECT_EQ(FormatBytes(323.0 * 1024 * 1024 * 1024 * 1024), "323.0 TB");
}

TEST(FormatCountTest, Units) {
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1200), "1.2K");
  EXPECT_EQ(FormatCount(80e6), "80.0M");
  EXPECT_EQ(FormatCount(3.1e9), "3.1B");
}

TEST(FormatPercentTest, Decimals) {
  EXPECT_EQ(FormatPercent(0.123), "12.3%");
  EXPECT_EQ(FormatPercent(0.9999, 0), "100%");
  EXPECT_EQ(FormatPercent(0.005, 2), "0.50%");
}

TEST(PadTest, RightAndLeft) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("abcdef", 4), "abcd");
  EXPECT_EQ(PadLeft("abcdef", 4), "abcd");
}

TEST(ParseUint64Test, Valid) {
  EXPECT_EQ(ParseUint64("0"), 0u);
  EXPECT_EQ(ParseUint64(" 42 "), 42u);
  EXPECT_EQ(ParseUint64("18446744073709551615"), ~0ULL);
}

TEST(ParseUint64Test, Invalid) {
  EXPECT_THROW(ParseUint64(""), std::invalid_argument);
  EXPECT_THROW(ParseUint64("12x"), std::invalid_argument);
  EXPECT_THROW(ParseUint64("-1"), std::invalid_argument);
}

TEST(ParseDoubleTest, Valid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-2"), -2.0);
  EXPECT_DOUBLE_EQ(ParseDouble("1e6"), 1e6);
}

TEST(ParseDoubleTest, Invalid) {
  EXPECT_THROW(ParseDouble("abc"), std::invalid_argument);
  EXPECT_THROW(ParseDouble("1.2.3"), std::invalid_argument);
}

}  // namespace
}  // namespace atlas::util
