#include "analysis/csv_export.h"

#include <gtest/gtest.h>

#include <sstream>

#include "analysis_fixtures.h"
#include "util/csv.h"

namespace atlas::analysis {
namespace {

using testing::MakeRecord;
using testing::RecordSpec;

trace::TraceBuffer SmallTrace() {
  trace::TraceBuffer buf;
  buf.Add(MakeRecord({.t = 0, .url = 1, .user = 1,
                      .type = trace::FileType::kMp4, .size = 5000000,
                      .bytes = 2000000, .code = trace::kHttpPartialContent}));
  buf.Add(MakeRecord({.t = 3600 * 1000, .url = 2, .user = 2,
                      .type = trace::FileType::kJpg, .size = 20000,
                      .bytes = 20000}));
  return buf;
}

std::vector<std::vector<std::string>> ParseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) rows.push_back(util::ParseCsvLine(line));
  }
  return rows;
}

TEST(CsvExportTest, Composition) {
  std::ostringstream out;
  WriteCompositionCsv({ComputeComposition(SmallTrace(), "X")}, out);
  const auto rows = ParseCsv(out.str());
  // Header + one row per class.
  ASSERT_EQ(rows.size(), 1u + trace::kNumContentClasses);
  EXPECT_EQ(rows[0][0], "site");
  EXPECT_EQ(rows[1][0], "X");
  EXPECT_EQ(rows[1][1], "video");
  EXPECT_EQ(rows[1][2], "1");        // one video object
  EXPECT_EQ(rows[1][4], "2000000");  // its bytes
}

TEST(CsvExportTest, HourlyVolumeHas24Rows) {
  std::ostringstream out;
  WriteHourlyVolumeCsv({ComputeHourlyVolume(SmallTrace(), "X")}, out);
  const auto rows = ParseCsv(out.str());
  ASSERT_EQ(rows.size(), 25u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"hour", "X"}));
  // Hour 0 and hour 1 each carry 50%.
  EXPECT_EQ(rows[1][1].substr(0, 7), "50.0000");
  EXPECT_EQ(rows[2][1].substr(0, 7), "50.0000");
}

TEST(CsvExportTest, CdfSeries) {
  stats::Ecdf e({1.0, 10.0, 100.0});
  std::ostringstream out;
  WriteCdfCsv({{"s1", &e}}, out, 8);
  const auto rows = ParseCsv(out.str());
  ASSERT_EQ(rows.size(), 9u);  // header + 8 grid points
  EXPECT_EQ(rows[1][0], "s1");
  // Final grid point hits the max with CDF 1.
  EXPECT_EQ(rows.back()[2].substr(0, 8), "1.000000");
}

TEST(CsvExportTest, CdfSkipsEmptySeries) {
  stats::Ecdf empty;
  empty.Finalize();
  std::ostringstream out;
  WriteCdfCsv({{"none", &empty}, {"null", nullptr}}, out);
  EXPECT_EQ(ParseCsv(out.str()).size(), 1u);  // header only
}

TEST(CsvExportTest, Aging) {
  std::ostringstream out;
  WriteAgingCsv({ComputeAging(SmallTrace(), "X")}, out);
  const auto rows = ParseCsv(out.str());
  ASSERT_EQ(rows.size(), 1u + kMaxAgeDays);
  EXPECT_EQ(rows[1][1], "1");
  EXPECT_EQ(rows[1][2].substr(0, 8), "1.000000");
}

TEST(CsvExportTest, ResponseCodes) {
  std::ostringstream out;
  WriteResponseCodesCsv({ComputeCaching(SmallTrace(), "X")}, out);
  const auto rows = ParseCsv(out.str());
  ASSERT_GE(rows.size(), 3u);
  bool found_206 = false;
  for (const auto& row : rows) {
    if (row.size() == 4 && row[1] == "video" && row[2] == "206") {
      found_206 = true;
      EXPECT_EQ(row[3], "1");
    }
  }
  EXPECT_TRUE(found_206);
}

}  // namespace
}  // namespace atlas::analysis
