// The parallel-execution contract, enforced end to end: for a fixed seed,
// generation + simulation + analysis produce byte-identical traces and
// identical reports at 1, 2, and 8 threads, and a pinned golden digest
// catches accidental RNG-stream reordering (e.g. changing kGenerateShards
// or the per-shard draw order).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analysis/suite.h"
#include "cdn/scenario.h"
#include "cdn/simulator.h"
#include "scenario_fixtures.h"
#include "synth/workload.h"
#include "trace/trace_io.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/par.h"

namespace atlas {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

// Restores the process-wide thread default on scope exit so the thread
// counts pinned here never leak into other suites.
struct ThreadDefaultGuard {
  ~ThreadDefaultGuard() { util::SetDefaultThreads(0); }
};

std::string SimulatedTraceBytes(std::uint64_t seed) {
  cdn::SimulatorConfig config;
  config.topology.edge_capacity_bytes = 256ULL << 20;
  const auto result =
      cdn::SimulateSite(synth::SiteProfile::P1(0.01), 7, config, seed);
  std::ostringstream out;
  trace::WriteBinary(result.trace, out);
  return out.str();
}

TEST(DeterminismTest, GeneratorEventsIdenticalAcrossThreadCounts) {
  util::SetLogLevel(util::LogLevel::kWarn);
  std::vector<synth::RequestEvent> reference;
  for (const int threads : kThreadCounts) {
    synth::WorkloadGenerator gen(synth::SiteProfile::V1(0.01), 42);
    const auto events = gen.Generate(4000, threads);
    ASSERT_EQ(events.size(), 4000u);
    if (threads == 1) {
      reference = events;
      continue;
    }
    ASSERT_EQ(events.size(), reference.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
      const auto& a = reference[i];
      const auto& b = events[i];
      ASSERT_EQ(a.timestamp_ms, b.timestamp_ms) << "event " << i;
      ASSERT_EQ(a.user_index, b.user_index) << "event " << i;
      ASSERT_EQ(a.object_index, b.object_index) << "event " << i;
      ASSERT_EQ(a.is_repeat, b.is_repeat) << "event " << i;
      ASSERT_EQ(a.session_start, b.session_start) << "event " << i;
      ASSERT_EQ(a.watch_fraction, b.watch_fraction) << "event " << i;
      ASSERT_EQ(a.anomaly, b.anomaly) << "event " << i;
    }
  }
}

TEST(DeterminismTest, SimulatedTraceByteIdenticalAcrossThreadCounts) {
  util::SetLogLevel(util::LogLevel::kWarn);
  ThreadDefaultGuard guard;
  std::string reference;
  for (const int threads : kThreadCounts) {
    util::SetDefaultThreads(threads);
    const std::string bytes = SimulatedTraceBytes(99);
    if (threads == 1) {
      reference = bytes;
      ASSERT_FALSE(reference.empty());
      continue;
    }
    EXPECT_EQ(bytes, reference) << "trace bytes diverged at " << threads
                                << " threads";
  }
}

TEST(DeterminismTest, RepeatedRunsAreByteIdentical) {
  util::SetLogLevel(util::LogLevel::kWarn);
  EXPECT_EQ(SimulatedTraceBytes(7), SimulatedTraceBytes(7));
  EXPECT_NE(SimulatedTraceBytes(7), SimulatedTraceBytes(8));
}

// FNV-1a digest over the serialized P-1 trace (seed 99, scale 0.01). If this
// moves, per-shard RNG stream assignment changed — a silent break of every
// recorded trace. Update it only for a deliberate generator change, and say
// so in the commit message.
constexpr std::uint64_t kGoldenTraceDigest = 0x749ed138fcbd8c3dULL;

TEST(DeterminismTest, GoldenTraceDigestPinned) {
  util::SetLogLevel(util::LogLevel::kWarn);
  const std::string bytes = SimulatedTraceBytes(99);
  EXPECT_EQ(util::Fnv1a64(bytes), kGoldenTraceDigest);
}

TEST(DeterminismTest, AnalysisReportIdenticalAcrossThreadCounts) {
  util::SetLogLevel(util::LogLevel::kWarn);
  cdn::SimulatorConfig config;
  config.topology.edge_capacity_bytes = 512ULL << 20;
  const cdn::Scenario scenario = cdn::Scenario::PaperStudy(0.01, config, 42);
  const trace::TraceBuffer merged = testutil::MaterializeMerged(scenario);

  std::string reference;
  for (const int threads : kThreadCounts) {
    analysis::SuiteConfig suite_config;
    // Trends exercise the nested ParallelFor path (suite workers calling
    // PairwiseDtw); keep the clustered set small so the test stays fast.
    suite_config.trend.min_requests = 60;
    suite_config.trend.max_objects = 40;
    suite_config.threads = threads;
    const analysis::AnalysisSuite suite(merged, scenario.registry(),
                                        suite_config);
    EXPECT_EQ(suite.sites().size(), 5u);
    std::ostringstream out;
    suite.Render(out);
    if (threads == 1) {
      reference = out.str();
      ASSERT_FALSE(reference.empty());
      continue;
    }
    EXPECT_EQ(out.str(), reference)
        << "report diverged at " << threads << " threads";
  }
}

}  // namespace
}  // namespace atlas
