#include "stats/timeseries.h"

#include <gtest/gtest.h>

#include <cmath>

namespace atlas::stats {
namespace {

TEST(TimeSeriesTest, AccumulateBuckets) {
  TimeSeries ts(1000, 10);
  ts.Accumulate(0);
  ts.Accumulate(999);
  ts.Accumulate(1000);
  ts.Accumulate(9999, 2.0);
  EXPECT_DOUBLE_EQ(ts[0], 2.0);
  EXPECT_DOUBLE_EQ(ts[1], 1.0);
  EXPECT_DOUBLE_EQ(ts[9], 2.0);
  EXPECT_DOUBLE_EQ(ts.Total(), 5.0);
}

TEST(TimeSeriesTest, OutOfWindowIgnored) {
  TimeSeries ts(1000, 10);
  ts.Accumulate(-1);
  ts.Accumulate(10000);
  EXPECT_DOUBLE_EQ(ts.Total(), 0.0);
}

TEST(TimeSeriesTest, RejectsBadBucketWidth) {
  EXPECT_THROW(TimeSeries(0, 5), std::invalid_argument);
  EXPECT_THROW(TimeSeries(-10, 5), std::invalid_argument);
}

TEST(TimeSeriesTest, MaxMeanArgMax) {
  TimeSeries ts(1, {1.0, 5.0, 3.0});
  EXPECT_DOUBLE_EQ(ts.Max(), 5.0);
  EXPECT_DOUBLE_EQ(ts.Mean(), 3.0);
  EXPECT_EQ(ts.ArgMax(), 1u);
}

TEST(TimeSeriesTest, SumNormalized) {
  TimeSeries ts(1, {2.0, 2.0, 4.0});
  const auto norm = ts.SumNormalized();
  EXPECT_DOUBLE_EQ(norm.Total(), 1.0);
  EXPECT_DOUBLE_EQ(norm[2], 0.5);
  // Zero series stays zero (no NaN).
  TimeSeries zero(1, 3);
  EXPECT_DOUBLE_EQ(zero.SumNormalized().Total(), 0.0);
}

TEST(TimeSeriesTest, ZNormalized) {
  TimeSeries ts(1, {1.0, 2.0, 3.0});
  const auto z = ts.ZNormalized();
  EXPECT_NEAR(z[0] + z[1] + z[2], 0.0, 1e-12);
  EXPECT_NEAR(z[2], -z[0], 1e-12);
  // Constant series -> all zero.
  TimeSeries flat(1, {4.0, 4.0});
  EXPECT_DOUBLE_EQ(flat.ZNormalized()[0], 0.0);
}

TEST(TimeSeriesTest, SmoothedPreservesMeanOfFlat) {
  TimeSeries ts(1, {3.0, 3.0, 3.0, 3.0, 3.0});
  const auto sm = ts.Smoothed(3);
  for (std::size_t i = 0; i < sm.size(); ++i) EXPECT_DOUBLE_EQ(sm[i], 3.0);
}

TEST(TimeSeriesTest, SmoothedReducesSpike) {
  TimeSeries ts(1, {0.0, 0.0, 9.0, 0.0, 0.0});
  const auto sm = ts.Smoothed(3);
  EXPECT_DOUBLE_EQ(sm[2], 3.0);
  EXPECT_DOUBLE_EQ(sm[1], 3.0);
  EXPECT_DOUBLE_EQ(sm[0], 0.0);
}

TEST(TimeSeriesTest, SmoothWindowOneIsIdentity) {
  TimeSeries ts(1, {1.0, 2.0});
  const auto sm = ts.Smoothed(1);
  EXPECT_DOUBLE_EQ(sm[0], 1.0);
  EXPECT_DOUBLE_EQ(sm[1], 2.0);
}

TEST(TimeSeriesTest, AutocorrelationOfPeriodicSignal) {
  // Period 24 cosine over one week of hours.
  TimeSeries ts(1, 168);
  for (std::size_t i = 0; i < 168; ++i) {
    ts[i] = std::cos(2.0 * M_PI * static_cast<double>(i) / 24.0);
  }
  EXPECT_GT(ts.Autocorrelation(24), 0.8);
  EXPECT_LT(ts.Autocorrelation(12), -0.8);
}

TEST(TimeSeriesTest, AutocorrelationEdgeCases) {
  TimeSeries ts(1, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(ts.Autocorrelation(5), 0.0);
  TimeSeries flat(1, {3.0, 3.0, 3.0});
  EXPECT_DOUBLE_EQ(flat.Autocorrelation(1), 0.0);
}

TEST(TimeSeriesTest, MassIn) {
  TimeSeries ts(1, {1.0, 1.0, 2.0, 0.0});
  EXPECT_DOUBLE_EQ(ts.MassIn(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(ts.MassIn(2, 10), 0.5);
  EXPECT_DOUBLE_EQ(ts.MassIn(3, 4), 0.0);
}

TEST(TimeSeriesTest, PointwiseMeanAndStddev) {
  std::vector<TimeSeries> group = {TimeSeries(1, {1.0, 4.0}),
                                   TimeSeries(1, {3.0, 4.0})};
  const auto mean = TimeSeries::PointwiseMean(group);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 4.0);
  const auto sd = TimeSeries::PointwiseStddev(group);
  EXPECT_DOUBLE_EQ(sd[0], 1.0);
  EXPECT_DOUBLE_EQ(sd[1], 0.0);
}

TEST(TimeSeriesTest, PointwiseMismatchThrows) {
  std::vector<TimeSeries> group = {TimeSeries(1, 2), TimeSeries(1, 3)};
  EXPECT_THROW(TimeSeries::PointwiseMean(group), std::invalid_argument);
}

}  // namespace
}  // namespace atlas::stats
